package experiment

import (
	"context"
	"fmt"
	"strings"

	"wayplace/internal/cache"
	"wayplace/internal/energy"
	"wayplace/internal/engine"
	"wayplace/internal/layout"
	"wayplace/internal/sim"
)

// Extensions beyond the paper's evaluation, exercising two claims its
// text makes but does not measure:
//
//   - section 4.2: "our scheme could also easily be applied to a
//     standard RAM cache" — ExtensionRAMTag quantifies the saving on a
//     conventional parallel-read SRAM organisation, where eliminating
//     W-1 ways removes data-array reads as well as tag reads;
//   - section 4.1: the OS can adjust the area "during program
//     execution" — ExtensionAdaptive runs the adaptive-OS policy and
//     compares it with the best static area size.

// RAMRow is one configuration of the RAM-tag extension.
type RAMRow struct {
	Ways     int
	Style    energy.ArrayStyle
	WayPlace Pair
}

// ramTagPoints are the organisations the RAM-tag extension evaluates:
// the associativities conventional RAM-tag caches are actually built
// with (4/8-way) alongside the XScale CAM points.
var ramTagPoints = []struct {
	ways  int
	style energy.ArrayStyle
}{
	{4, energy.RAMTag},
	{8, energy.RAMTag},
	{8, energy.CAMTag},
	{32, energy.CAMTag},
}

// ramTagSpecs is the RAM-tag extension's grid: baseline and 16KB
// way-placement per organisation per benchmark, organisation-major,
// stride 2. The array style rides on each spec (engine.RunSpec.Style),
// so the whole extension is one batch — the run cache keys on the full
// resolved config, so CAM and RAM cells never alias, while same-
// geometry CAM and RAM cells share one fetch pass when coalesced.
func (s *Suite) ramTagSpecs() []engine.RunSpec {
	specs := make([]engine.RunSpec, 0, 2*len(ramTagPoints)*len(s.Workloads))
	for _, rc := range ramTagPoints {
		icfg := cache.Config{SizeBytes: 32 << 10, Ways: rc.ways, LineBytes: 32, Policy: cache.RoundRobin}
		for _, w := range s.Workloads {
			b := spec(w, icfg, energy.Baseline, 0)
			b.Style = rc.style
			p := spec(w, icfg, energy.WayPlacement, InitialWPSize)
			p.Style = rc.style
			specs = append(specs, b, p)
		}
	}
	return specs
}

// ExtensionRAMTag evaluates way-placement on conventional RAM-tag
// caches, averaged over the suite. The baseline for each row uses the
// same array style.
func (s *Suite) ExtensionRAMTag(ctx context.Context) ([]RAMRow, error) {
	res, err := s.RunBatch(ctx, s.ramTagSpecs())
	if err != nil {
		return nil, err
	}
	rows := make([]RAMRow, 0, len(ramTagPoints))
	n := float64(len(s.Workloads))
	for ri, rc := range ramTagPoints {
		row := RAMRow{Ways: rc.ways, Style: rc.style}
		off := 2 * len(s.Workloads) * ri
		for i := range s.Workloads {
			addPair(&row.WayPlace, pairOf(res[off+2*i+1].Stats, res[off+2*i].Stats))
		}
		row.WayPlace.Energy /= n
		row.WayPlace.ED /= n
		rows = append(rows, row)
	}
	return rows, nil
}

// FormatRAMTag renders the RAM-tag extension rows.
func FormatRAMTag(rows []RAMRow) string {
	var sb strings.Builder
	sb.WriteString("Extension: way-placement on RAM-tag vs CAM-tag arrays (32KB, suite average)\n")
	fmt.Fprintf(&sb, "  %-22s %12s %8s\n", "organisation", "I$ energy", "ED")
	for _, r := range rows {
		fmt.Fprintf(&sb, "  %2d-way %-14s %11.1f%% %8.3f\n",
			r.Ways, r.Style, 100*r.WayPlace.Energy, r.WayPlace.ED)
	}
	sb.WriteString("  (RAM-tag caches read every way's data in parallel, so naming the way\n")
	sb.WriteString("   eliminates data-array reads too — section 4.2's 'standard RAM cache')\n")
	return sb.String()
}

// AdaptiveRow is one benchmark's adaptive-sizing outcome.
type AdaptiveRow struct {
	Bench     string
	Static    Pair // best static size for this machine (16KB)
	Adaptive  Pair
	FinalSize uint32
	Resizes   int
}

// adaptiveSpecs is the adaptive extension's grid: baseline, static
// 16KB way-placement and the adaptive policy per benchmark, stride 3.
func (s *Suite) adaptiveSpecs() []engine.RunSpec {
	icfg := XScaleICache()
	adaptive := engine.AdaptiveSpecOf(sim.DefaultAdaptivePolicy(icfg, s.Base.ITLB.PageBytes))
	specs := make([]engine.RunSpec, 0, 3*len(s.Workloads))
	for _, w := range s.Workloads {
		specs = append(specs,
			spec(w, icfg, energy.Baseline, 0),
			spec(w, icfg, energy.WayPlacement, InitialWPSize),
			engine.RunSpec{Workload: w.Name, ICache: icfg, Scheme: energy.WayPlacement, Adaptive: adaptive})
	}
	return specs
}

// ExtensionAdaptive runs the adaptive OS policy (starting from one
// page) on each workload and compares it with the static 16KB area.
// Adaptive cells are first-class grid members (engine.RunSpec.Adaptive),
// so the whole comparison is one parallel, memoised batch.
func (s *Suite) ExtensionAdaptive(ctx context.Context) ([]AdaptiveRow, error) {
	const stride = 3 // baseline, static WP, adaptive WP
	res, err := s.RunBatch(ctx, s.adaptiveSpecs())
	if err != nil {
		return nil, err
	}
	rows := make([]AdaptiveRow, len(s.Workloads))
	for i, w := range s.Workloads {
		base, static, ad := res[stride*i].Stats, res[stride*i+1].Stats, res[stride*i+2]
		if ad.Stats.Checksum != base.Checksum {
			return nil, fmt.Errorf("%s: adaptive run changed the checksum", w.Name)
		}
		changes := ad.AreaChanges
		if len(changes) == 0 {
			return nil, fmt.Errorf("%s: adaptive cell returned no resize trace", w.Name)
		}
		rows[i] = AdaptiveRow{
			Bench:     w.Name,
			Static:    pairOf(static, base),
			Adaptive:  pairOf(ad.Stats, base),
			FinalSize: changes[len(changes)-1].Size,
			Resizes:   len(changes) - 1,
		}
	}
	return rows, nil
}

// FormatAdaptive renders the adaptive extension rows.
func FormatAdaptive(rows []AdaptiveRow) string {
	var sb strings.Builder
	sb.WriteString("Extension: OS-adaptive way-placement area (32KB/32-way; policy starts at 1KB)\n")
	fmt.Fprintf(&sb, "  %-12s %12s %12s %10s %8s\n",
		"benchmark", "static 16KB", "adaptive", "final area", "resizes")
	var sSum, aSum float64
	for _, r := range rows {
		fmt.Fprintf(&sb, "  %-12s %11.1f%% %11.1f%% %9dK %8d\n",
			r.Bench, 100*r.Static.Energy, 100*r.Adaptive.Energy, r.FinalSize>>10, r.Resizes)
		sSum += r.Static.Energy
		aSum += r.Adaptive.Energy
	}
	n := float64(len(rows))
	fmt.Fprintf(&sb, "  %-12s %11.1f%% %11.1f%%\n", "average", 100*sSum/n, 100*aSum/n)
	return sb.String()
}

// TransferRow quantifies profile transfer for one benchmark: the
// paper trains on the small input and evaluates on the large one, so
// the layout's quality depends on the profile generalising.
type TransferRow struct {
	Bench string
	// Coverage of a 2KB area under the large-input (oracle) run's own
	// dynamic behaviour, for the small-profile layout and an oracle
	// layout built from the large-input profile itself.
	SmallProfile  Pair
	OracleProfile Pair
}

// ExtensionProfileTransfer measures how much is lost by training on
// the small input instead of the evaluation input (which the paper's
// methodology — and ours — forbids using). Both layouts run under a
// scarce 2KB area where layout quality matters.
func (s *Suite) ExtensionProfileTransfer(ctx context.Context) ([]TransferRow, error) {
	icfg := XScaleICache()
	rows := make([]TransferRow, len(s.Workloads))
	idx := make(map[string]int)
	for i, w := range s.Workloads {
		idx[w.Name] = i
	}
	err := s.forEach(ctx, func(ctx context.Context, w *Workload) error {
		baseRes, err := s.RunSpec(ctx, spec(w, icfg, energy.Baseline, 0))
		if err != nil {
			return err
		}
		base := baseRes.Stats
		// Oracle: profile the large input itself, then relink.
		largeProf, _, err := sim.ProfileRun(w.Original, MaxInstrs)
		if err != nil {
			return err
		}
		oracleProg, err := layout.Link(w.Unit, largeProf, TextBase)
		if err != nil {
			return err
		}
		cfg := s.wpConfig(tightWPSize)
		small, err := s.runVariant(ctx, w, cfg, w.Placed)
		if err != nil {
			return err
		}
		oracleRun, err := sim.RunContext(ctx, oracleProg, cfg)
		if err != nil {
			return err
		}
		if oracleRun.Checksum != base.Checksum {
			return fmt.Errorf("%s: oracle layout changed the checksum", w.Name)
		}
		rows[idx[w.Name]] = TransferRow{
			Bench:         w.Name,
			SmallProfile:  small,
			OracleProfile: pairOf(oracleRun, base),
		}
		return nil
	})
	return rows, err
}

// FormatTransfer renders the profile-transfer rows.
func FormatTransfer(rows []TransferRow) string {
	var sb strings.Builder
	sb.WriteString("Extension: profile transfer, small-input training vs large-input oracle\n")
	sb.WriteString("(32KB/32-way, scarce 2KB area so layout quality matters)\n")
	fmt.Fprintf(&sb, "  %-12s %14s %14s %8s\n", "benchmark", "small profile", "oracle profile", "gap")
	var sSum, oSum float64
	for _, r := range rows {
		fmt.Fprintf(&sb, "  %-12s %13.1f%% %13.1f%% %7.2f%%\n",
			r.Bench, 100*r.SmallProfile.Energy, 100*r.OracleProfile.Energy,
			100*(r.SmallProfile.Energy-r.OracleProfile.Energy))
		sSum += r.SmallProfile.Energy
		oSum += r.OracleProfile.Energy
	}
	n := float64(len(rows))
	fmt.Fprintf(&sb, "  %-12s %13.1f%% %13.1f%% %7.2f%%\n", "average",
		100*sSum/n, 100*oSum/n, 100*(sSum-oSum)/n)
	return sb.String()
}
