package experiment

import (
	"context"
	"fmt"
	"strings"

	"wayplace/internal/cache"
	"wayplace/internal/energy"
	"wayplace/internal/engine"
	"wayplace/internal/sim"
)

// Pair is one benchmark's (or the average's) normalised results for
// one scheme: I-cache energy (figures 4a/5a/6a) and ED product
// (figures 4b/5b/6b), both relative to the baseline machine.
type Pair struct {
	Energy float64
	ED     float64
}

// spec builds one engine cell for a suite workload.
func spec(w *Workload, icfg cache.Config, scheme energy.Scheme, wp uint32) engine.RunSpec {
	return engine.RunSpec{Workload: w.Name, ICache: icfg, Scheme: scheme, WPSize: wp}
}

// fig4Specs is figure 4's grid: baseline, way-memoization and 16KB
// way-placement per benchmark, stride 3.
func (s *Suite) fig4Specs() []engine.RunSpec {
	icfg := XScaleICache()
	specs := make([]engine.RunSpec, 0, 3*len(s.Workloads))
	for _, w := range s.Workloads {
		specs = append(specs,
			spec(w, icfg, energy.Baseline, 0),
			spec(w, icfg, energy.WayMemoization, 0),
			spec(w, icfg, energy.WayPlacement, InitialWPSize))
	}
	return specs
}

// Fig4Row is one benchmark's bars in figure 4.
type Fig4Row struct {
	Bench    string
	WayMem   Pair
	WayPlace Pair
}

// Fig4Result is the whole figure.
type Fig4Result struct {
	Rows    []Fig4Row
	Average Fig4Row
}

// Figure4 reproduces figures 4(a) and 4(b): per-benchmark normalised
// I-cache energy and ED product for way-memoization and
// way-placement on the 32KB/32-way cache with a 16KB WP area.
func (s *Suite) Figure4(ctx context.Context) (*Fig4Result, error) {
	res, err := s.RunBatch(ctx, s.fig4Specs())
	if err != nil {
		return nil, err
	}
	out := &Fig4Result{Rows: make([]Fig4Row, len(s.Workloads))}
	for i, w := range s.Workloads {
		base, wm, wp := res[3*i].Stats, res[3*i+1].Stats, res[3*i+2].Stats
		out.Rows[i] = Fig4Row{
			Bench:    w.Name,
			WayMem:   pairOf(wm, base),
			WayPlace: pairOf(wp, base),
		}
	}
	out.Average = Fig4Row{Bench: "average"}
	for _, r := range out.Rows {
		out.Average.WayMem.Energy += r.WayMem.Energy
		out.Average.WayMem.ED += r.WayMem.ED
		out.Average.WayPlace.Energy += r.WayPlace.Energy
		out.Average.WayPlace.ED += r.WayPlace.ED
	}
	n := float64(len(out.Rows))
	out.Average.WayMem.Energy /= n
	out.Average.WayMem.ED /= n
	out.Average.WayPlace.Energy /= n
	out.Average.WayPlace.ED /= n
	return out, nil
}

// Fig5Point is one way-placement-area size in figure 5 (averaged
// across the suite).
type Fig5Point struct {
	WPSizeKB int
	Pair
}

// Fig5Result is the whole figure: the way-placement sweep plus the
// way-memoization reference bar.
type Fig5Result struct {
	Points []Fig5Point
	WayMem Pair
}

// Fig5Sizes are the way-placement area sizes of section 6.2.
var Fig5Sizes = []int{16, 8, 4, 2, 1} // KB

// fig5Specs is figure 5's grid: baseline, way-memoization and the
// area-size sweep per benchmark, stride 2+len(Fig5Sizes).
func (s *Suite) fig5Specs() []engine.RunSpec {
	icfg := XScaleICache()
	specs := make([]engine.RunSpec, 0, (2+len(Fig5Sizes))*len(s.Workloads))
	for _, w := range s.Workloads {
		specs = append(specs,
			spec(w, icfg, energy.Baseline, 0),
			spec(w, icfg, energy.WayMemoization, 0))
		for _, kb := range Fig5Sizes {
			specs = append(specs, spec(w, icfg, energy.WayPlacement, uint32(kb)<<10))
		}
	}
	return specs
}

// Figure5 reproduces figures 5(a) and 5(b): average normalised
// I-cache energy and ED product while the way-placement area shrinks
// from 16KB to 1KB on the 32KB/32-way cache. No relinking happens —
// the same placed binary serves every size, as in section 4.1.
func (s *Suite) Figure5(ctx context.Context) (*Fig5Result, error) {
	stride := 2 + len(Fig5Sizes)
	res, err := s.RunBatch(ctx, s.fig5Specs())
	if err != nil {
		return nil, err
	}
	out := &Fig5Result{Points: make([]Fig5Point, len(Fig5Sizes))}
	for i := range s.Workloads {
		base := res[stride*i].Stats
		wm := res[stride*i+1].Stats
		addPair(&out.WayMem, pairOf(wm, base))
		for j := range Fig5Sizes {
			addPair(&out.Points[j].Pair, pairOf(res[stride*i+2+j].Stats, base))
		}
	}
	n := float64(len(s.Workloads))
	out.WayMem.Energy /= n
	out.WayMem.ED /= n
	for i := range out.Points {
		out.Points[i].WPSizeKB = Fig5Sizes[i]
		out.Points[i].Energy /= n
		out.Points[i].ED /= n
	}
	return out, nil
}

// Fig6Cell is one cache configuration in figure 6, averaged across
// the suite: way-memoization plus way-placement at the figure's two
// area sizes (16KB and 8KB).
type Fig6Cell struct {
	SizeKB int
	Ways   int
	WayMem Pair
	WP16   Pair
	WP8    Pair
}

// Fig6Sizes and Fig6Ways define the section 6.3 sweep.
// The sweep is reconstructed as {8,16,32}KB x {8,16,32}-way: the
// XScale design point (32KB/32-way) is the top corner, and the small
// low-associativity corner is where the paper reports way-memoization
// increasing cache energy while way-placement still reduces it to 82%.
var (
	Fig6Sizes = []int{8, 16, 32} // KB
	Fig6Ways  = []int{8, 16, 32}
)

// fig6Cfgs enumerates the sweep's cache configurations.
func fig6Cfgs() []cache.Config {
	var cfgs []cache.Config
	for _, kb := range Fig6Sizes {
		for _, ways := range Fig6Ways {
			cfgs = append(cfgs, cache.Config{
				SizeBytes: kb << 10, Ways: ways, LineBytes: 32, Policy: cache.RoundRobin,
			})
		}
	}
	return cfgs
}

// fig6Specs is figure 6's grid: four schemes per cache configuration
// per benchmark, configuration-major, stride 4.
func (s *Suite) fig6Specs() []engine.RunSpec {
	cfgs := fig6Cfgs()
	specs := make([]engine.RunSpec, 0, 4*len(cfgs)*len(s.Workloads))
	for _, icfg := range cfgs {
		for _, w := range s.Workloads {
			specs = append(specs,
				spec(w, icfg, energy.Baseline, 0),
				spec(w, icfg, energy.WayMemoization, 0),
				spec(w, icfg, energy.WayPlacement, 16<<10),
				spec(w, icfg, energy.WayPlacement, 8<<10))
		}
	}
	return specs
}

// Figure6 reproduces figures 6(a) and 6(b): the cache size and
// associativity sweep. The whole sweep — every cache configuration
// times every workload times four schemes — is submitted as a single
// grid, so the engine parallelises across configurations as well as
// benchmarks.
func (s *Suite) Figure6(ctx context.Context) ([]Fig6Cell, error) {
	cfgs := fig6Cfgs()
	const stride = 4 // baseline, waymem, wp16, wp8
	res, err := s.RunBatch(ctx, s.fig6Specs())
	if err != nil {
		return nil, err
	}
	cells := make([]Fig6Cell, len(cfgs))
	n := float64(len(s.Workloads))
	for ci, icfg := range cfgs {
		cell := Fig6Cell{SizeKB: icfg.SizeBytes >> 10, Ways: icfg.Ways}
		rowBase := stride * len(s.Workloads) * ci
		for wi := range s.Workloads {
			r := res[rowBase+stride*wi:]
			base := r[0].Stats
			addPair(&cell.WayMem, pairOf(r[1].Stats, base))
			addPair(&cell.WP16, pairOf(r[2].Stats, base))
			addPair(&cell.WP8, pairOf(r[3].Stats, base))
		}
		for _, p := range []*Pair{&cell.WayMem, &cell.WP16, &cell.WP8} {
			p.Energy /= n
			p.ED /= n
		}
		cells[ci] = cell
	}
	return cells, nil
}

// --- helpers -------------------------------------------------------

// pairOf derives a normalised (energy, ED) pair from a run and its
// baseline on the same machine configuration.
func pairOf(run, base *sim.RunStats) Pair {
	return Pair{
		Energy: energy.NormICache(run.Energy, base.Energy),
		ED:     energy.EDProduct(run.Energy, run.Cycles, base.Energy, base.Cycles),
	}
}

// addPair accumulates a pair. All aggregation happens after the grid
// returns, in workload order, so sums are deterministic.
func addPair(dst *Pair, p Pair) {
	dst.Energy += p.Energy
	dst.ED += p.ED
}

// --- table formatting ----------------------------------------------

// Table1 renders the baseline system configuration table.
func Table1(icfg cache.Config) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Table 1: Baseline system configuration\n")
	fmt.Fprintf(&sb, "  %-18s %s\n", "Pipeline", "7/8 stages (in-order, event-based timing)")
	fmt.Fprintf(&sb, "  %-18s %s\n", "Functional units", "1 ALU, 1 MAC, 1 load/store")
	fmt.Fprintf(&sb, "  %-18s %s\n", "Issue", "single issue, in-order")
	fmt.Fprintf(&sb, "  %-18s %s\n", "Memory bus width", "32 bit")
	fmt.Fprintf(&sb, "  %-18s %s\n", "Memory latency", "50 cycles")
	fmt.Fprintf(&sb, "  %-18s %s\n", "I-TLB, D-TLB", "32-entry fully associative")
	fmt.Fprintf(&sb, "  %-18s %dKB, %d-way, %dB block\n", "I-Cache, D-Cache",
		icfg.SizeBytes>>10, icfg.Ways, icfg.LineBytes)
	return sb.String()
}

// FormatFig4 renders figure 4 as text.
func FormatFig4(r *Fig4Result) string {
	var sb strings.Builder
	sb.WriteString("Figure 4: normalised I-cache energy (a) and ED product (b)\n")
	sb.WriteString("32KB 32-way I-cache, 16KB way-placement area\n")
	fmt.Fprintf(&sb, "  %-12s %10s %10s   %10s %10s\n",
		"benchmark", "waymem(a)", "wayplc(a)", "waymem(b)", "wayplc(b)")
	for _, row := range append(r.Rows, r.Average) {
		fmt.Fprintf(&sb, "  %-12s %9.1f%% %9.1f%%   %10.3f %10.3f\n",
			row.Bench, 100*row.WayMem.Energy, 100*row.WayPlace.Energy,
			row.WayMem.ED, row.WayPlace.ED)
	}
	return sb.String()
}

// FormatFig5 renders figure 5 as text.
func FormatFig5(r *Fig5Result) string {
	var sb strings.Builder
	sb.WriteString("Figure 5: way-placement area size sweep (32KB 32-way cache, suite average)\n")
	fmt.Fprintf(&sb, "  %-12s %10s %10s\n", "scheme", "energy(a)", "ED(b)")
	fmt.Fprintf(&sb, "  %-12s %9.1f%% %10.3f\n", "waymem", 100*r.WayMem.Energy, r.WayMem.ED)
	for _, p := range r.Points {
		fmt.Fprintf(&sb, "  wayplc %2dKB  %9.1f%% %10.3f\n", p.WPSizeKB, 100*p.Energy, p.ED)
	}
	return sb.String()
}

// FormatFig6 renders figure 6 as text.
func FormatFig6(cells []Fig6Cell) string {
	var sb strings.Builder
	sb.WriteString("Figure 6: cache size/associativity sweep (suite average)\n")
	fmt.Fprintf(&sb, "  %-12s %9s %9s %9s   %8s %8s %8s\n",
		"config", "waymem(a)", "wp16K(a)", "wp8K(a)", "waymem(b)", "wp16K(b)", "wp8K(b)")
	for _, c := range cells {
		fmt.Fprintf(&sb, "  %2dKB %2d-way  %8.1f%% %8.1f%% %8.1f%%   %8.3f %8.3f %8.3f\n",
			c.SizeKB, c.Ways,
			100*c.WayMem.Energy, 100*c.WP16.Energy, 100*c.WP8.Energy,
			c.WayMem.ED, c.WP16.ED, c.WP8.ED)
	}
	return sb.String()
}
