package progen

import (
	"testing"

	"wayplace/internal/cpu"
	"wayplace/internal/mem"
)

func TestGeneratedProgramsHaltAndAreDeterministic(t *testing.T) {
	for seed := uint64(0); seed < 20; seed++ {
		p1 := Program(seed, DefaultOptions(), 0x1_0000)
		p2 := Program(seed, DefaultOptions(), 0x1_0000)
		if len(p1.Words) != len(p2.Words) {
			t.Fatalf("seed %d: non-deterministic size", seed)
		}
		for i := range p1.Words {
			if p1.Words[i] != p2.Words[i] {
				t.Fatalf("seed %d: non-deterministic at word %d", seed, i)
			}
		}
		c := cpu.New(p1, mem.New(mem.DefaultConfig()))
		res, err := c.Run(5_000_000)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if res.Instrs == 0 {
			t.Fatalf("seed %d: empty execution", seed)
		}
	}
}

func TestOptionsShapeProgram(t *testing.T) {
	small := Unit(1, Options{MaxHelpers: 1, MaxOuterTrip: 1, MaxBlockOps: 2, ColdFuncs: 0})
	big := Unit(1, Options{MaxHelpers: 1, MaxOuterTrip: 1, MaxBlockOps: 2, ColdFuncs: 10})
	if len(big.Funcs) <= len(small.Funcs) {
		t.Errorf("ColdFuncs did not add functions: %d vs %d", len(big.Funcs), len(small.Funcs))
	}
	// Invalid options fall back to defaults rather than panicking.
	if u := Unit(2, Options{}); len(u.Funcs) == 0 {
		t.Error("zero options produced an empty unit")
	}
}
