// Package progen generates random, well-formed, terminating programs
// for property-based testing and fuzzing. Every generated program:
//
//   - halts within a bounded number of instructions (all loops have
//     decreasing counters);
//   - keeps memory traffic inside a private scratch region with
//     aligned word accesses;
//   - accumulates an input-dependent checksum in R0, so two machines
//     disagreeing on semantics are detected by a register compare.
//
// The generator is deterministic per seed.
package progen

import (
	"fmt"

	"wayplace/internal/asm"
	"wayplace/internal/isa"
	"wayplace/internal/obj"
)

// Options tunes program shape.
type Options struct {
	MaxHelpers   int // helper functions callable from main (>=1)
	MaxOuterTrip int // main-loop trip count bound (>=1)
	MaxBlockOps  int // straight-line ops per work burst (>=2)
	ColdFuncs    int // unreachable-but-linked cold functions
}

// DefaultOptions returns the shape used by the repository's fuzz
// tests.
func DefaultOptions() Options {
	return Options{MaxHelpers: 3, MaxOuterTrip: 30, MaxBlockOps: 8, ColdFuncs: 0}
}

type gen struct {
	s uint64
}

func (g *gen) next(n int) int {
	g.s ^= g.s << 13
	g.s ^= g.s >> 7
	g.s ^= g.s << 17
	return int((g.s >> 33) % uint64(n))
}

// Unit generates a random object unit.
func Unit(seed uint64, opt Options) *obj.Unit {
	if opt.MaxHelpers < 1 || opt.MaxOuterTrip < 1 || opt.MaxBlockOps < 2 {
		opt = DefaultOptions()
	}
	g := &gen{s: seed*6364136223846793005 + 1442695040888963407}
	b := asm.NewBuilder("progen")
	scratch := b.Zeros(512)

	nh := 1 + g.next(opt.MaxHelpers)
	helpers := make([]string, nh)
	for i := range helpers {
		helpers[i] = fmt.Sprintf("h%d", i)
	}

	emitWork := func(f *asm.FuncBuilder, tagbase string) {
		n := 2 + g.next(opt.MaxBlockOps)
		for i := 0; i < n; i++ {
			switch g.next(7) {
			case 0:
				f.Movi(isa.Reg(1+g.next(9)), uint16(g.next(4096)))
			case 1:
				f.Op3([]isa.Op{isa.ADD, isa.SUB, isa.EOR, isa.ORR, isa.AND, isa.MUL}[g.next(6)],
					isa.Reg(1+g.next(9)), isa.Reg(1+g.next(9)), isa.Reg(1+g.next(9)))
			case 2:
				f.OpI([]isa.Op{isa.ADDI, isa.EORI, isa.LSLI, isa.LSRI}[g.next(4)],
					isa.Reg(1+g.next(9)), isa.Reg(1+g.next(9)), int32(g.next(16)))
			case 3:
				f.Li(isa.R9, scratch+uint32(4*g.next(128)))
				f.Str(isa.Reg(1+g.next(8)), isa.R9, 0)
			case 4:
				f.Li(isa.R9, scratch+uint32(4*g.next(128)))
				f.Ldr(isa.Reg(1+g.next(8)), isa.R9, 0)
			case 5:
				tag := fmt.Sprintf("%s%d", tagbase, i)
				f.Cmpi(isa.Reg(1+g.next(9)), int32(g.next(100)))
				f.B([]isa.Cond{isa.EQ, isa.NE, isa.LT, isa.GE}[g.next(4)], tag)
				f.Addi(isa.Reg(1+g.next(9)), isa.Reg(1+g.next(9)), 1)
				f.Block(tag)
			default:
				f.Add(isa.R0, isa.R0, isa.Reg(1+g.next(9)))
			}
		}
	}

	f := b.Func("main")
	f.Movi(isa.R10, uint16(1+g.next(opt.MaxOuterTrip)))
	f.Block("outer")
	emitWork(f, "m")
	if g.next(2) == 0 {
		f.Call(helpers[g.next(nh)])
	}
	f.Add(isa.R0, isa.R0, isa.R10)
	f.Subi(isa.R10, isa.R10, 1)
	f.Cmpi(isa.R10, 0)
	f.Bgt("outer")
	f.Halt()

	for _, h := range helpers {
		hf := b.Func(h)
		hf.Movi(isa.R11, uint16(1+g.next(8)))
		hf.Block("loop")
		emitWork(hf, "h")
		hf.Subi(isa.R11, isa.R11, 1)
		hf.Cmpi(isa.R11, 0)
		hf.Bgt("loop")
		hf.Ret()
	}

	for i := 0; i < opt.ColdFuncs; i++ {
		cf := b.Func(fmt.Sprintf("cold%d", i))
		for k := 0; k < 8+g.next(40); k++ {
			cf.Addi(isa.Reg(1+g.next(9)), isa.Reg(1+g.next(9)), int32(k))
		}
		cf.Ret()
	}

	return b.MustBuild()
}

// Program generates and links a random program in original order.
func Program(seed uint64, opt Options, base uint32) *obj.Program {
	u := Unit(seed, opt)
	p, err := obj.Link(u, obj.OriginalOrder(u), base)
	if err != nil {
		panic(err)
	}
	return p
}
