package api_test

import (
	"encoding/json"
	"errors"
	"strings"
	"testing"

	"wayplace/internal/api"
	"wayplace/internal/cache"
	"wayplace/internal/energy"
	"wayplace/internal/engine"
)

func xscale() api.CacheGeometry {
	return api.CacheGeometry{SizeBytes: 32 << 10, Ways: 32, LineBytes: 32}
}

func TestRequestSpecRoundTrip(t *testing.T) {
	reqs := []api.RunRequest{
		{Workload: "sha", ICache: xscale(), Scheme: api.SchemeBaseline},
		{Workload: "crc", ICache: xscale(), Scheme: api.SchemeWayMemoization},
		{Workload: "patricia", ICache: xscale(), Scheme: api.SchemeWayPlacement, WPSizeBytes: 16 << 10},
		{Workload: "sha", ICache: xscale(), Scheme: api.SchemeWayPlacement, WPSizeBytes: 16 << 10,
			Style: api.StyleRAMTag, OracleHint: true},
		{Workload: "sha", ICache: xscale(), Scheme: api.SchemeWayPlacement, WPSizeBytes: 16 << 10,
			NoSameLine: true},
		{Workload: "sha",
			ICache: api.CacheGeometry{SizeBytes: 8 << 10, Ways: 8, LineBytes: 32, Policy: "lru"},
			Scheme: api.SchemeWayPlacement,
			Adaptive: &api.AdaptivePolicySpec{
				IntervalInstrs: 50_000, StartSizeBytes: 1 << 10,
				MinSizeBytes: 1 << 10, MaxSizeBytes: 64 << 10,
				GrowThreshold: 0.95, AliasMissRate: 0.02,
			}},
	}
	for _, req := range reqs {
		spec, err := req.Spec()
		if err != nil {
			t.Fatalf("%+v: Spec: %v", req, err)
		}
		back := api.RequestOf(spec)
		spec2, err := back.Spec()
		if err != nil {
			t.Fatalf("RequestOf(%v).Spec: %v", spec, err)
		}
		if spec != spec2 {
			t.Errorf("round trip changed the cell: %v -> %v", spec, spec2)
		}
		if req.Key() != spec.Key() {
			t.Errorf("request key %q != spec key %q", req.Key(), spec.Key())
		}
	}
}

func TestRequestJSONRoundTrip(t *testing.T) {
	req := api.RunRequest{
		Workload: "sha", ICache: xscale(), Scheme: api.SchemeWayPlacement,
		Adaptive: &api.AdaptivePolicySpec{IntervalInstrs: 1000, StartSizeBytes: 1024},
	}
	data, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	var back api.RunRequest
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Workload != req.Workload || back.Scheme != req.Scheme ||
		back.ICache != req.ICache || *back.Adaptive != *req.Adaptive {
		t.Errorf("JSON round trip changed the request: %+v -> %+v", req, back)
	}
	// Optional fields stay off the wire when unset.
	min, err := json.Marshal(api.RunRequest{Workload: "crc", ICache: xscale(), Scheme: "baseline"})
	if err != nil {
		t.Fatal(err)
	}
	for _, forbidden := range []string{"wp_size_bytes", "adaptive", "policy"} {
		if strings.Contains(string(min), forbidden) {
			t.Errorf("minimal request leaks optional field %q: %s", forbidden, min)
		}
	}
}

func TestValidateFieldErrors(t *testing.T) {
	bad := api.RunRequest{
		Workload: "",
		ICache:   api.CacheGeometry{SizeBytes: 3000, Ways: 32, LineBytes: 32},
		Scheme:   "warp-speed",
	}
	err := bad.Validate()
	if err == nil {
		t.Fatal("invalid request validated")
	}
	var verr *api.ValidationError
	if !errors.As(err, &verr) {
		t.Fatalf("error is %T, want *api.ValidationError", err)
	}
	fields := map[string]bool{}
	for _, f := range verr.Fields {
		fields[f.Field] = true
	}
	for _, want := range []string{"workload", "scheme", "icache"} {
		if !fields[want] {
			t.Errorf("missing field error for %q in %v", want, verr.Fields)
		}
	}

	// Cross-field rules.
	for _, tc := range []struct {
		name  string
		req   api.RunRequest
		field string
	}{
		{"wp-size-on-baseline",
			api.RunRequest{Workload: "sha", ICache: xscale(), Scheme: "baseline", WPSizeBytes: 1024},
			"wp_size_bytes"},
		{"adaptive-on-waymem",
			api.RunRequest{Workload: "sha", ICache: xscale(), Scheme: "waymem",
				Adaptive: &api.AdaptivePolicySpec{IntervalInstrs: 1, StartSizeBytes: 1024}},
			"adaptive"},
		{"adaptive-without-interval",
			api.RunRequest{Workload: "sha", ICache: xscale(), Scheme: "wayplace",
				Adaptive: &api.AdaptivePolicySpec{StartSizeBytes: 1024}},
			"adaptive.interval_instrs"},
		{"bad-style",
			api.RunRequest{Workload: "sha", ICache: xscale(), Scheme: "baseline", Style: "nvram"},
			"style"},
		{"oracle-on-baseline",
			api.RunRequest{Workload: "sha", ICache: xscale(), Scheme: "baseline", OracleHint: true},
			"oracle_hint"},
		{"nosameline-on-waymem",
			api.RunRequest{Workload: "sha", ICache: xscale(), Scheme: "waymem", NoSameLine: true},
			"no_same_line"},
	} {
		err := tc.req.Validate()
		if err == nil {
			t.Errorf("%s: validated", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.field) {
			t.Errorf("%s: error %q does not name %q", tc.name, err, tc.field)
		}
	}
}

func TestToSpecsIndexesErrors(t *testing.T) {
	reqs := []api.RunRequest{
		{Workload: "sha", ICache: xscale(), Scheme: "baseline"},
		{Workload: "", ICache: xscale(), Scheme: "nope"},
	}
	_, err := api.ToSpecs(reqs)
	if err == nil {
		t.Fatal("batch with an invalid request converted")
	}
	var verr *api.ValidationError
	if !errors.As(err, &verr) {
		t.Fatalf("error is %T, want *api.ValidationError", err)
	}
	for _, f := range verr.Fields {
		if !strings.HasPrefix(f.Field, "requests[1].") {
			t.Errorf("field error %q not anchored at requests[1]", f.Field)
		}
	}

	specs, err := api.ToSpecs(reqs[:1])
	if err != nil {
		t.Fatal(err)
	}
	want := engine.RunSpec{
		Workload: "sha",
		ICache:   cache.Config{SizeBytes: 32 << 10, Ways: 32, LineBytes: 32, Policy: cache.RoundRobin},
		Scheme:   energy.Baseline,
	}
	if specs[0] != want {
		t.Errorf("ToSpecs = %v, want %v", specs[0], want)
	}
}

// TestBatchKeyDeterministic: identical batches map to identical job
// ids, different batches to different ids, and the id embeds no
// process state.
func TestBatchKeyDeterministic(t *testing.T) {
	a := []api.RunRequest{
		{Workload: "sha", ICache: xscale(), Scheme: "baseline"},
		{Workload: "sha", ICache: xscale(), Scheme: "wayplace", WPSizeBytes: 16 << 10},
	}
	b := append([]api.RunRequest(nil), a...)
	if api.BatchKey(a) != api.BatchKey(b) {
		t.Error("identical batches produced different job ids")
	}
	b[1].WPSizeBytes = 8 << 10
	if api.BatchKey(a) == api.BatchKey(b) {
		t.Error("different batches share a job id")
	}
	if !strings.HasPrefix(api.BatchKey(a), "job-") {
		t.Errorf("job id %q missing prefix", api.BatchKey(a))
	}
}
