package api

import (
	"encoding/json"
	"io"
)

// EncodeBatchResponse writes resp as one JSON object, encoding each
// RunResult individually instead of marshalling the whole response
// into a single buffer. A 4096-cell BatchResponse therefore needs
// transient encoding memory proportional to its *largest result*, not
// its total body — the property that lets the serve layer stream huge
// sync batches under load without doubling its resident set.
//
// The byte stream is exactly what json.NewEncoder(w).Encode(resp)
// would produce (field order, HTML escaping, trailing newline), so v1
// clients that decode the body as one JSON object see no difference;
// TestEncodeBatchResponseByteCompat holds the two encodings equal.
func EncodeBatchResponse(w io.Writer, resp *BatchResponse) error {
	if err := writeChunks(w,
		[]byte(`{"api_version":`), jsonBytes(resp.APIVersion),
		[]byte(`,"job_id":`), jsonBytes(resp.JobID),
		[]byte(`,"status":`), jsonBytes(resp.Status),
	); err != nil {
		return err
	}
	if resp.Tenant != "" {
		if err := writeChunks(w, []byte(`,"tenant":`), jsonBytes(resp.Tenant)); err != nil {
			return err
		}
	}
	if len(resp.Results) > 0 {
		if _, err := w.Write([]byte(`,"results":[`)); err != nil {
			return err
		}
		for i := range resp.Results {
			if i > 0 {
				if _, err := w.Write([]byte{','}); err != nil {
					return err
				}
			}
			b, err := json.Marshal(&resp.Results[i])
			if err != nil {
				return err
			}
			if _, err := w.Write(b); err != nil {
				return err
			}
		}
		if _, err := w.Write([]byte{']'}); err != nil {
			return err
		}
	}
	if len(resp.Errors) > 0 {
		if _, err := w.Write([]byte(`,"errors":`)); err != nil {
			return err
		}
		b, err := json.Marshal(resp.Errors)
		if err != nil {
			return err
		}
		if _, err := w.Write(b); err != nil {
			return err
		}
	}
	_, err := w.Write([]byte("}\n"))
	return err
}

// jsonBytes marshals a value known not to fail (plain strings).
func jsonBytes(v any) []byte {
	b, _ := json.Marshal(v)
	return b
}

func writeChunks(w io.Writer, chunks ...[]byte) error {
	for _, c := range chunks {
		if _, err := w.Write(c); err != nil {
			return err
		}
	}
	return nil
}
