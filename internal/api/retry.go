package api

import (
	"net/http"
	"strconv"
	"strings"
	"time"
)

// ParseRetryAfter parses an RFC 9110 Retry-After value: either
// delta-seconds ("120") or an HTTP-date in any of the three accepted
// formats (IMF-fixdate, RFC 850, ANSI C asctime). It returns how long
// the sender asked the client to wait — measured from now for the
// date form — and whether the value was present and well-formed.
//
// ok distinguishes "Retry-After: 0" (a valid hint: retry immediately)
// from an absent or garbled header (no hint at all; for this API's
// 429s that means a permanent rejection, not an invitation to retry).
// A date in the past parses to 0, retry immediately, per the RFC's
// "delay-seconds = 0" equivalence. Negative delta-seconds are not
// valid delay-seconds and report ok=false.
func ParseRetryAfter(value string, now time.Time) (wait time.Duration, ok bool) {
	value = strings.TrimSpace(value)
	if value == "" {
		return 0, false
	}
	if secs, err := strconv.Atoi(value); err == nil {
		if secs < 0 {
			return 0, false
		}
		return time.Duration(secs) * time.Second, true
	}
	if t, err := http.ParseTime(value); err == nil {
		if wait := t.Sub(now); wait > 0 {
			return wait, true
		}
		return 0, true
	}
	return 0, false
}
