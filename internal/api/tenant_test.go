package api

import (
	"encoding/json"
	"strings"
	"testing"
)

func TestParseTenantTable(t *testing.T) {
	cases := []struct {
		in string
		ok bool
	}{
		{"team-a", true},
		{"svc.prod_1", true},
		{"127.0.0.1", true},
		{"::1", true},
		{"2001:db8::42", true},
		{strings.Repeat("a", MaxTenantLen), true},
		{"", false},
		{strings.Repeat("a", MaxTenantLen+1), false},
		{"has space", false},
		{"semi;colon", false},
		{"tab\tname", false},
		{"quote\"name", false},
		{"каша", false}, // non-ASCII
	}
	for _, c := range cases {
		got, err := ParseTenant(c.in)
		if c.ok && err != nil {
			t.Errorf("ParseTenant(%q): unexpected error %v", c.in, err)
		}
		if !c.ok && err == nil {
			t.Errorf("ParseTenant(%q): want error, got %q", c.in, got)
		}
		if c.ok && string(got) != c.in {
			t.Errorf("ParseTenant(%q) = %q, want identity", c.in, got)
		}
	}
}

func TestDefaultTenantStripsPort(t *testing.T) {
	cases := []struct {
		addr string
		want Tenant
	}{
		{"127.0.0.1:51234", "127.0.0.1"},
		{"127.0.0.1:8100", "127.0.0.1"},
		{"[::1]:9999", "::1"},
		{"10.0.0.7", "10.0.0.7"}, // no port at all
		{"", "unknown"},
		{"bad addr with spaces", "unknown"},
	}
	for _, c := range cases {
		if got := DefaultTenant(c.addr); got != c.want {
			t.Errorf("DefaultTenant(%q) = %q, want %q", c.addr, got, c.want)
		}
	}
	// Two connections from the same host collapse into one tenant.
	if DefaultTenant("127.0.0.1:1111") != DefaultTenant("127.0.0.1:2222") {
		t.Fatalf("same host, different ports should share a tenant")
	}
}

func TestResolveTenant(t *testing.T) {
	ten, explicit, err := ResolveTenant("team-a", "127.0.0.1:5555")
	if err != nil || !explicit || ten != "team-a" {
		t.Fatalf("explicit header: got (%q, %v, %v)", ten, explicit, err)
	}
	ten, explicit, err = ResolveTenant("", "127.0.0.1:5555")
	if err != nil || explicit || ten != "127.0.0.1" {
		t.Fatalf("derived default: got (%q, %v, %v)", ten, explicit, err)
	}
	if _, _, err := ResolveTenant("bad tenant", "127.0.0.1:5555"); err == nil {
		t.Fatalf("invalid header must error, not remap")
	}
}

// The tenant and code fields are additive: requests and responses
// that do not use them must marshal to exactly the bytes the v1
// schema produced before they existed.
func TestTenantlessWireBytesUnchanged(t *testing.T) {
	breq := BatchRequest{APIVersion: Version, Requests: []RunRequest{{
		Workload: "w", Scheme: SchemeBaseline,
		ICache: CacheGeometry{SizeBytes: 1024, Ways: 2, LineBytes: 16},
	}}}
	gotReq, err := json.Marshal(breq)
	if err != nil {
		t.Fatal(err)
	}
	wantReq := `{"api_version":"v1","requests":[{"workload":"w","icache":{"size_bytes":1024,"ways":2,"line_bytes":16},"scheme":"baseline"}]}`
	if string(gotReq) != wantReq {
		t.Errorf("BatchRequest bytes drifted:\n got %s\nwant %s", gotReq, wantReq)
	}

	bresp := BatchResponse{APIVersion: Version, JobID: "job-abc", Status: StatusDone}
	gotResp, err := json.Marshal(bresp)
	if err != nil {
		t.Fatal(err)
	}
	wantResp := `{"api_version":"v1","job_id":"job-abc","status":"done"}`
	if string(gotResp) != wantResp {
		t.Errorf("BatchResponse bytes drifted:\n got %s\nwant %s", gotResp, wantResp)
	}

	eresp := ErrorResponse{Error: "server at capacity", RetryAfterSeconds: 1}
	gotErr, err := json.Marshal(eresp)
	if err != nil {
		t.Fatal(err)
	}
	wantErr := `{"error":"server at capacity","retry_after_seconds":1}`
	if string(gotErr) != wantErr {
		t.Errorf("ErrorResponse bytes drifted:\n got %s\nwant %s", gotErr, wantErr)
	}
}

// With a tenant echoed and a code attached, the new fields appear in
// fixed positions — and old decoders simply ignore them.
func TestTenantAndCodeFieldsAreAdditive(t *testing.T) {
	bresp := BatchResponse{APIVersion: Version, JobID: "j", Status: StatusDone, Tenant: "team-a"}
	got, err := json.Marshal(bresp)
	if err != nil {
		t.Fatal(err)
	}
	want := `{"api_version":"v1","job_id":"j","status":"done","tenant":"team-a"}`
	if string(got) != want {
		t.Errorf("tenant echo bytes:\n got %s\nwant %s", got, want)
	}
	eresp := ErrorResponse{Error: "tenant over quota", Code: CodeOverQuota, Retryable: true, RetryAfterSeconds: 0.5}
	gotE, err := json.Marshal(eresp)
	if err != nil {
		t.Fatal(err)
	}
	wantE := `{"error":"tenant over quota","code":"over_quota","retryable":true,"retry_after_seconds":0.5}`
	if string(gotE) != wantE {
		t.Errorf("coded error bytes:\n got %s\nwant %s", gotE, wantE)
	}
}
