package api

import "sort"

// SubBatch is the slice of one batch routed to a single executor — a
// backend of the sharded fleet, in practice. Indices remember where
// each request sat in the original batch, so a merged response can put
// every result back in the caller's cell order no matter how the
// batch was partitioned.
type SubBatch struct {
	// Owner is the executor index the split function assigned.
	Owner int
	// Indices[i] is the original batch position of Requests[i].
	Indices []int
	// Requests are the cells routed to Owner, in original relative
	// order.
	Requests []RunRequest
}

// SplitBatch partitions a batch by the owner function (request index →
// executor index in [0,n)), preserving relative request order inside
// each sub-batch. Only non-empty sub-batches are returned, in
// ascending owner order, so the split is deterministic for a given
// owner assignment.
func SplitBatch(reqs []RunRequest, n int, owner func(i int) int) []SubBatch {
	byOwner := make(map[int]*SubBatch, n)
	for i, r := range reqs {
		o := owner(i)
		sb, ok := byOwner[o]
		if !ok {
			sb = &SubBatch{Owner: o}
			byOwner[o] = sb
		}
		sb.Indices = append(sb.Indices, i)
		sb.Requests = append(sb.Requests, r)
	}
	subs := make([]SubBatch, 0, len(byOwner))
	for _, sb := range byOwner {
		subs = append(subs, *sb)
	}
	sort.Slice(subs, func(a, b int) bool { return subs[a].Owner < subs[b].Owner })
	return subs
}

// MergeSubResponses reassembles per-executor responses into one
// BatchResponse covering the original batch: results land back at
// their original indices and per-cell failure indices are remapped
// from sub-batch positions to batch positions. A sub-batch whose
// response is missing (resps[i] == nil) fails wholesale with errs[i]
// — every one of its cells gets an indexed CellFailure and an
// echoed-request result shell, exactly the shape the serve layer uses
// for cells that never produced stats.
//
// The merged status is StatusDone unless any cell failed. Errors are
// sorted by cell index, so the merged response is deterministic
// regardless of executor completion order. JobID is left empty for
// the caller to stamp (the coordinator uses the batch's own
// deterministic BatchKey, not any sub-batch's).
func MergeSubResponses(total int, subs []SubBatch, resps []*BatchResponse, errs []error) *BatchResponse {
	out := &BatchResponse{
		APIVersion: Version,
		Status:     StatusDone,
		Results:    make([]RunResult, total),
	}
	for si, sub := range subs {
		if resps[si] == nil {
			msg := "sub-batch failed"
			if si < len(errs) && errs[si] != nil {
				msg = errs[si].Error()
			}
			for j, orig := range sub.Indices {
				out.Status = StatusFailed
				out.Errors = append(out.Errors, CellFailure{Index: orig, Key: sub.Requests[j].Key(), Error: msg})
				out.Results[orig] = RunResult{Request: sub.Requests[j], Key: sub.Requests[j].Key()}
			}
			continue
		}
		resp := resps[si]
		for j, orig := range sub.Indices {
			if j < len(resp.Results) {
				out.Results[orig] = resp.Results[j]
			}
		}
		if resp.Status != StatusDone {
			out.Status = StatusFailed
		}
		for _, f := range resp.Errors {
			remapped := f
			if f.Index >= 0 && f.Index < len(sub.Indices) {
				remapped.Index = sub.Indices[f.Index]
			}
			out.Status = StatusFailed
			out.Errors = append(out.Errors, remapped)
		}
	}
	sort.Slice(out.Errors, func(a, b int) bool { return out.Errors[a].Index < out.Errors[b].Index })
	return out
}
