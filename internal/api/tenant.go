package api

import (
	"fmt"
	"net"
)

// TenantHeader carries the tenant identity on every v1 request. The
// header is optional: a request without one is accounted under a
// tenant derived from the peer address (DefaultTenant), which keeps
// tenant-less clients byte-compatible — they never see the identity
// they were assigned.
const TenantHeader = "X-WP-Tenant"

// MaxTenantLen bounds explicit tenant names. Long enough for an
// IPv6 address or a service name, short enough that tenant ids stay
// cheap as map keys and metric labels.
const MaxTenantLen = 64

// Tenant identifies the accounting principal of a request: quotas,
// weighted-fair scheduling and per-tenant metrics all key on it.
type Tenant string

// Validate checks length and charset. The charset admits hostnames,
// IPv4/IPv6 addresses (DefaultTenant produces those) and the usual
// service-name alphabet, and nothing that needs escaping in a metric
// label or a log line.
func (t Tenant) Validate() error {
	if t == "" {
		return fmt.Errorf("tenant must not be empty")
	}
	if len(t) > MaxTenantLen {
		return fmt.Errorf("tenant exceeds %d bytes", MaxTenantLen)
	}
	for i := 0; i < len(t); i++ {
		c := t[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9':
		case c == '.' || c == '_' || c == '-' || c == ':':
		default:
			return fmt.Errorf("tenant byte %d: %q not in [A-Za-z0-9._:-]", i, c)
		}
	}
	return nil
}

// ParseTenant validates an explicit tenant name from the wire.
func ParseTenant(s string) (Tenant, error) {
	t := Tenant(s)
	if err := t.Validate(); err != nil {
		return "", err
	}
	return t, nil
}

// DefaultTenant derives the accounting tenant for a request that
// carries no X-WP-Tenant header: the peer's host with the ephemeral
// port stripped, so all connections from one machine collapse into
// one tenant instead of one tenant per TCP connection.
func DefaultTenant(remoteAddr string) Tenant {
	host, _, err := net.SplitHostPort(remoteAddr)
	if err != nil {
		host = remoteAddr
	}
	if t := Tenant(host); t.Validate() == nil {
		return t
	}
	return "unknown"
}

// ResolveTenant resolves the accounting tenant of a request from its
// header value and peer address. explicit reports whether the client
// named the tenant itself — only explicit tenants are echoed back in
// responses. An invalid header is a client error (invalid_request),
// never silently remapped.
func ResolveTenant(header, remoteAddr string) (t Tenant, explicit bool, err error) {
	if header == "" {
		return DefaultTenant(remoteAddr), false, nil
	}
	t, err = ParseTenant(header)
	if err != nil {
		return "", false, err
	}
	return t, true, nil
}
