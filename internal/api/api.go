// Package api is the versioned, JSON-serializable schema for
// describing simulation cells and their results — the one way every
// consumer (the CLIs, the wpserved network service, snapshots and
// scripts) names a cell. It mirrors engine.RunSpec field for field and
// converts losslessly in both directions, so a request built from
// flags, a request POSTed over HTTP and a spec constructed in Go all
// denote the same simulation and hit the same run-cache entry.
//
// The schema is versioned (Version) and validation is field-level: a
// malformed request reports every bad field with its JSON path, so
// HTTP 400 responses and CLI errors are actionable without reading
// server logs.
package api

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"strings"

	"wayplace/internal/cache"
	"wayplace/internal/energy"
	"wayplace/internal/engine"
	"wayplace/internal/sim"
)

// Version tags the request/response schema. Clients send it in
// BatchRequest.APIVersion (optional — empty means current); servers
// echo it in every response and reject versions they do not speak.
const Version = "v1"

// Scheme names accepted on the wire, matching energy.Scheme.String().
const (
	SchemeBaseline       = "baseline"
	SchemeWayPlacement   = "wayplace"
	SchemeWayMemoization = "waymem"
)

// ParseScheme maps a wire scheme name to the energy-model enum.
func ParseScheme(s string) (energy.Scheme, error) {
	switch s {
	case SchemeBaseline:
		return energy.Baseline, nil
	case SchemeWayPlacement:
		return energy.WayPlacement, nil
	case SchemeWayMemoization:
		return energy.WayMemoization, nil
	}
	return 0, fmt.Errorf("unknown scheme %q (want %s, %s or %s)",
		s, SchemeBaseline, SchemeWayPlacement, SchemeWayMemoization)
}

// Array-style names accepted on the wire, matching
// energy.ArrayStyle.String().
const (
	StyleCAMTag = "cam-tag"
	StyleRAMTag = "ram-tag"
)

// ParseStyle maps a wire array-style name to the energy-model enum.
// Empty selects the default (CAM-tag, inheriting any server-side base
// template style).
func ParseStyle(s string) (energy.ArrayStyle, error) {
	switch s {
	case "", StyleCAMTag:
		return energy.CAMTag, nil
	case StyleRAMTag:
		return energy.RAMTag, nil
	}
	return 0, fmt.Errorf("unknown array style %q (want %q or %q)", s, StyleCAMTag, StyleRAMTag)
}

// ParsePolicy maps a wire replacement-policy name to the cache enum.
// Empty selects the default (round-robin).
func ParsePolicy(s string) (cache.Policy, error) {
	switch s {
	case "", cache.RoundRobin.String():
		return cache.RoundRobin, nil
	case cache.LRU.String():
		return cache.LRU, nil
	}
	return 0, fmt.Errorf("unknown replacement policy %q (want %q or %q)",
		s, cache.RoundRobin, cache.LRU)
}

// CacheGeometry is the serializable form of cache.Config.
type CacheGeometry struct {
	SizeBytes int `json:"size_bytes"`
	Ways      int `json:"ways"`
	LineBytes int `json:"line_bytes"`
	// Policy is the replacement policy name ("round-robin", "lru");
	// empty means round-robin.
	Policy string `json:"policy,omitempty"`
}

// Config converts the geometry to the cache-model form.
func (g CacheGeometry) Config() (cache.Config, error) {
	pol, err := ParsePolicy(g.Policy)
	if err != nil {
		return cache.Config{}, err
	}
	return cache.Config{SizeBytes: g.SizeBytes, Ways: g.Ways, LineBytes: g.LineBytes, Policy: pol}, nil
}

// GeometryOf captures a cache.Config as wire geometry. The default
// policy is omitted so round-robin requests stay minimal.
func GeometryOf(c cache.Config) CacheGeometry {
	g := CacheGeometry{SizeBytes: c.SizeBytes, Ways: c.Ways, LineBytes: c.LineBytes}
	if c.Policy != cache.RoundRobin {
		g.Policy = c.Policy.String()
	}
	return g
}

// AdaptivePolicySpec is the serializable adaptive-OS area policy
// (sim.AdaptivePolicy without the test-only Inspect hook).
type AdaptivePolicySpec struct {
	IntervalInstrs uint64  `json:"interval_instrs"`
	StartSizeBytes uint32  `json:"start_size_bytes"`
	MinSizeBytes   uint32  `json:"min_size_bytes,omitempty"`
	MaxSizeBytes   uint32  `json:"max_size_bytes,omitempty"`
	GrowThreshold  float64 `json:"grow_threshold,omitempty"`
	AliasMissRate  float64 `json:"alias_miss_rate,omitempty"`
}

// EngineSpec converts the policy to the engine's comparable form.
func (a AdaptivePolicySpec) EngineSpec() engine.AdaptiveSpec {
	return engine.AdaptiveSpec{
		IntervalInstrs: a.IntervalInstrs,
		StartSize:      a.StartSizeBytes,
		MinSize:        a.MinSizeBytes,
		MaxSize:        a.MaxSizeBytes,
		GrowThreshold:  a.GrowThreshold,
		AliasMissRate:  a.AliasMissRate,
	}
}

// AdaptiveOf captures an engine adaptive spec on the wire; nil when
// the cell is not adaptive.
func AdaptiveOf(a engine.AdaptiveSpec) *AdaptivePolicySpec {
	if !a.Enabled() {
		return nil
	}
	return &AdaptivePolicySpec{
		IntervalInstrs: a.IntervalInstrs,
		StartSizeBytes: a.StartSize,
		MinSizeBytes:   a.MinSize,
		MaxSizeBytes:   a.MaxSize,
		GrowThreshold:  a.GrowThreshold,
		AliasMissRate:  a.AliasMissRate,
	}
}

// RunRequest describes one simulation cell: workload, I-cache
// geometry, fetch scheme, static way-placement area size, and — for
// adaptive-OS cells — the resize policy. It is the JSON twin of
// engine.RunSpec.
type RunRequest struct {
	Workload    string        `json:"workload"`
	ICache      CacheGeometry `json:"icache"`
	Scheme      string        `json:"scheme"`
	WPSizeBytes uint32        `json:"wp_size_bytes,omitempty"`
	// Style is the cache array organisation for the energy model
	// ("cam-tag", "ram-tag"); empty means CAM-tag.
	Style string `json:"style,omitempty"`
	// OracleHint and NoSameLine are the way-placement ablation
	// switches: perfect way prediction instead of the 1-bit hint, and
	// the same-line tag-check skip disabled.
	OracleHint bool                `json:"oracle_hint,omitempty"`
	NoSameLine bool                `json:"no_same_line,omitempty"`
	Adaptive   *AdaptivePolicySpec `json:"adaptive,omitempty"`
}

// FieldError locates one invalid field by its JSON path.
type FieldError struct {
	Field   string `json:"field"`
	Message string `json:"message"`
}

func (e FieldError) Error() string { return e.Field + ": " + e.Message }

// ValidationError aggregates every field-level problem of a request
// (or batch), so a client can fix all of them in one round trip.
type ValidationError struct {
	Fields []FieldError `json:"fields"`
}

func (e *ValidationError) Error() string {
	if len(e.Fields) == 0 {
		return "invalid request"
	}
	msgs := make([]string, len(e.Fields))
	for i, f := range e.Fields {
		msgs[i] = f.Error()
	}
	return "invalid request: " + strings.Join(msgs, "; ")
}

// add appends a field error with the given path prefix.
func (e *ValidationError) add(prefix, field, format string, args ...any) {
	if prefix != "" {
		field = prefix + "." + field
	}
	e.Fields = append(e.Fields, FieldError{Field: field, Message: fmt.Sprintf(format, args...)})
}

// or returns nil when no field failed.
func (e *ValidationError) or() error {
	if len(e.Fields) == 0 {
		return nil
	}
	return e
}

// Validate checks the request and returns a *ValidationError listing
// every invalid field (paths relative to the request object).
func (r RunRequest) Validate() error { return r.validate("") }

func (r RunRequest) validate(prefix string) error {
	var verr ValidationError
	if r.Workload == "" {
		verr.add(prefix, "workload", "must be set")
	}
	if _, err := ParseScheme(r.Scheme); err != nil {
		verr.add(prefix, "scheme", "%v", err)
	}
	if _, err := ParsePolicy(r.ICache.Policy); err != nil {
		verr.add(prefix, "icache.policy", "%v", err)
	}
	if icfg, err := r.ICache.Config(); err == nil {
		if err := icfg.Validate(); err != nil {
			verr.add(prefix, "icache", "%v", err)
		}
	}
	if r.WPSizeBytes > 0 && r.Scheme != SchemeWayPlacement {
		verr.add(prefix, "wp_size_bytes", "only valid with scheme %q", SchemeWayPlacement)
	}
	if _, err := ParseStyle(r.Style); err != nil {
		verr.add(prefix, "style", "%v", err)
	}
	if r.OracleHint && r.Scheme != SchemeWayPlacement {
		verr.add(prefix, "oracle_hint", "only valid with scheme %q", SchemeWayPlacement)
	}
	if r.NoSameLine && r.Scheme != SchemeWayPlacement {
		verr.add(prefix, "no_same_line", "only valid with scheme %q", SchemeWayPlacement)
	}
	if r.Adaptive != nil {
		if r.Scheme != SchemeWayPlacement {
			verr.add(prefix, "adaptive", "only valid with scheme %q", SchemeWayPlacement)
		}
		if r.WPSizeBytes > 0 {
			verr.add(prefix, "wp_size_bytes", "must be 0 for adaptive cells (the area is policy-driven)")
		}
		if r.Adaptive.IntervalInstrs == 0 {
			verr.add(prefix, "adaptive.interval_instrs", "must be positive")
		}
		if r.Adaptive.StartSizeBytes == 0 {
			verr.add(prefix, "adaptive.start_size_bytes", "must be positive")
		}
	}
	return verr.or()
}

// Spec converts a validated request to the engine cell. It validates
// first, so conversion of a malformed request fails with the same
// field-level error the wire surface reports.
func (r RunRequest) Spec() (engine.RunSpec, error) {
	if err := r.Validate(); err != nil {
		return engine.RunSpec{}, err
	}
	scheme, _ := ParseScheme(r.Scheme)
	icfg, _ := r.ICache.Config()
	style, _ := ParseStyle(r.Style)
	spec := engine.RunSpec{
		Workload:   r.Workload,
		ICache:     icfg,
		Scheme:     scheme,
		WPSize:     r.WPSizeBytes,
		Style:      style,
		OracleHint: r.OracleHint,
		NoSameLine: r.NoSameLine,
	}
	if r.Adaptive != nil {
		spec.Adaptive = r.Adaptive.EngineSpec()
	}
	return spec, nil
}

// Key returns the engine's canonical cell key for a valid request and
// "" for an invalid one.
func (r RunRequest) Key() string {
	spec, err := r.Spec()
	if err != nil {
		return ""
	}
	return spec.Key()
}

// RequestOf captures an engine cell on the wire. FromSpec∘Spec is the
// identity on valid specs.
func RequestOf(s engine.RunSpec) RunRequest {
	req := RunRequest{
		Workload:    s.Workload,
		ICache:      GeometryOf(s.ICache),
		Scheme:      s.Scheme.String(),
		WPSizeBytes: s.WPSize,
		OracleHint:  s.OracleHint,
		NoSameLine:  s.NoSameLine,
		Adaptive:    AdaptiveOf(s.Adaptive),
	}
	// The default style is omitted so CAM-tag requests stay minimal.
	if s.Style != energy.CAMTag {
		req.Style = s.Style.String()
	}
	return req
}

// ToSpecs converts a batch, aggregating field errors under their
// requests[i] path.
func ToSpecs(reqs []RunRequest) ([]engine.RunSpec, error) {
	specs := make([]engine.RunSpec, len(reqs))
	var verr ValidationError
	for i, r := range reqs {
		prefix := fmt.Sprintf("requests[%d]", i)
		if err := r.validate(prefix); err != nil {
			verr.Fields = append(verr.Fields, err.(*ValidationError).Fields...)
			continue
		}
		specs[i], _ = r.Spec()
	}
	if err := verr.or(); err != nil {
		return nil, err
	}
	return specs, nil
}

// AreaChange mirrors sim.AreaChange on the wire.
type AreaChange struct {
	AtInstr   uint64 `json:"at_instr"`
	SizeBytes uint32 `json:"size_bytes"`
}

// RunResult is one cell's outcome: the echoed request, the canonical
// key, provenance (cache hit, wall seconds) and the full statistics.
type RunResult struct {
	Request     RunRequest `json:"request"`
	Key         string     `json:"key"`
	CacheHit    bool       `json:"cache_hit"`
	WallSeconds float64    `json:"wall_seconds,omitempty"`
	// GroupID names the single-pass group that simulated this cell
	// server-side ("<workload>/original" or "<workload>/placed");
	// empty for cache hits and uncoalesced batches. Informational —
	// grouping never changes statistics.
	GroupID     string        `json:"group_id,omitempty"`
	Stats       *sim.RunStats `json:"stats"`
	AreaChanges []AreaChange  `json:"area_changes,omitempty"`
}

// ResultOf captures an engine result on the wire.
func ResultOf(res *engine.Result) RunResult {
	out := RunResult{
		Request:     RequestOf(res.Spec),
		Key:         res.Spec.Key(),
		CacheHit:    res.CacheHit,
		WallSeconds: res.Wall.Seconds(),
		GroupID:     res.GroupID,
		Stats:       res.Stats,
	}
	for _, ch := range res.AreaChanges {
		out.AreaChanges = append(out.AreaChanges, AreaChange{AtInstr: ch.AtInstr, SizeBytes: ch.Size})
	}
	return out
}

// CellFailure reports one failed cell of a batch by input index.
type CellFailure struct {
	Index int    `json:"index"`
	Key   string `json:"key,omitempty"`
	Error string `json:"error"`
}

// Batch statuses, as reported by BatchResponse.Status.
const (
	StatusQueued  = "queued"
	StatusRunning = "running"
	StatusDone    = "done"
	StatusFailed  = "failed"
)

// BatchRequest is the POST /v1/runs payload.
type BatchRequest struct {
	// APIVersion is optional; empty means the current Version.
	APIVersion string       `json:"api_version,omitempty"`
	Requests   []RunRequest `json:"requests"`
	// Async requests job-style execution: the server answers
	// immediately with a job id to poll at GET /v1/runs/{id}.
	Async bool `json:"async,omitempty"`
	// Coalesce controls server-side single-pass grouping of the
	// batch's cells. Omitted (nil) means the server default — grouping
	// on. Results are bit-identical either way; disabling it forces
	// the per-cell reference path.
	Coalesce *bool `json:"coalesce,omitempty"`
}

// BatchResponse answers both POST /v1/runs and GET /v1/runs/{id}.
// Results holds one entry per request, in request order, with nil
// Stats (and a matching entry in Errors) for failed cells.
type BatchResponse struct {
	APIVersion string `json:"api_version"`
	JobID      string `json:"job_id"`
	Status     string `json:"status"`
	// Tenant echoes the X-WP-Tenant header of the submitting request.
	// Omitted when the client sent none — a derived default tenant is
	// an accounting detail, not part of the client's wire contract.
	Tenant  string        `json:"tenant,omitempty"`
	Results []RunResult   `json:"results,omitempty"`
	Errors  []CellFailure `json:"errors,omitempty"`
}

// Machine-readable error codes carried by ErrorResponse.Code. Codes
// are additive to the v1 schema: old clients ignore them and keep
// inferring retryability from the Retry-After header; code-aware
// clients switch on Code/Retryable instead.
const (
	// CodeInvalidRequest: the request body failed validation (details
	// in Fields). Not retryable as-is.
	CodeInvalidRequest = "invalid_request"
	// CodeUnsupportedVersion: the client speaks an api_version this
	// server does not. Not retryable.
	CodeUnsupportedVersion = "unsupported_version"
	// CodeQueueFull: the server-wide slot pool (or async pool) is
	// exhausted, or the server is draining — a global condition every
	// tenant observes. Retryable after the global Retry-After hint.
	CodeQueueFull = "queue_full"
	// CodeOverQuota: this tenant is at its own concurrency quota while
	// other tenants' capacity remains. Retryable after the per-tenant
	// Retry-After hint; polite tenants never see it.
	CodeOverQuota = "over_quota"
	// CodeBatchTooLarge: the batch exceeds the server's max cell
	// count. Never retryable as-is — resubmit as smaller batches.
	CodeBatchTooLarge = "batch_too_large"
	// CodeJobUnknown: the polled job id is unknown (expired, evicted,
	// or never submitted here). Not retryable.
	CodeJobUnknown = "job_unknown"
	// CodeStoreFailure: the durable journal/store rejected the write;
	// the request itself is fine. Retryable.
	CodeStoreFailure = "store_failure"
)

// ErrorResponse is the body of every non-2xx answer.
type ErrorResponse struct {
	Error  string       `json:"error"`
	Fields []FieldError `json:"fields,omitempty"`
	// Code is the machine-readable error class (one of the Code*
	// constants); empty on answers from pre-code servers.
	Code string `json:"code,omitempty"`
	// Retryable reports whether resubmitting the identical request can
	// succeed once the condition named by Code clears.
	Retryable bool `json:"retryable,omitempty"`
	// RetryAfterSeconds accompanies 429 responses (mirrors the
	// Retry-After header for clients that only read bodies).
	RetryAfterSeconds float64 `json:"retry_after_seconds,omitempty"`
}

// BatchKey derives a deterministic job id from the canonical cell keys
// of a batch: identical batches — across clients and processes — map
// to the same id, so async re-submissions attach to the in-flight job
// instead of queueing duplicate work. Invalid requests contribute
// their empty key; callers validate before relying on the id.
func BatchKey(reqs []RunRequest) string {
	h := sha256.New()
	h.Write([]byte(Version + "\n"))
	for _, r := range reqs {
		h.Write([]byte(r.Key()))
		h.Write([]byte{'\n'})
	}
	return "job-" + hex.EncodeToString(h.Sum(nil))[:16]
}
