package api

import "wayplace/internal/sim"

// Wire schema tags for the persistent layer (internal/store). They
// live here, next to the run schema, because the store's on-disk
// records are made of the same wire types a serving response is: a
// StoredResult is the durable half of a RunResult, a JournalRecord
// carries a verbatim BatchRequest. Any process that can speak the run
// API can read the store.
const (
	// StoreSchema tags one content-addressed result object (one file
	// per canonical engine.RunSpec.Key).
	StoreSchema = "wpstore/v1"
	// JournalSchema tags one line of the append-only async-batch
	// journal.
	JournalSchema = "wpjournal/v1"
)

// StoredResult is the durable form of one simulation cell's outcome:
// the canonical cell key and the statistics that every consumer
// (figures, snapshots, serving responses) is derived from. Provenance
// fields (cache hit, wall time, group id) are deliberately absent —
// they describe one particular execution, not the content the key
// addresses.
type StoredResult struct {
	Schema      string        `json:"schema"`
	Key         string        `json:"key"`
	Stats       *sim.RunStats `json:"stats"`
	AreaChanges []AreaChange  `json:"area_changes,omitempty"`
}

// Journal operations, in the order they appear for one job.
const (
	// JournalOpAccept records a batch the server has accepted for
	// async execution. It is fsync'd to the journal *before* the 202
	// response leaves the server, so any id a client holds survives a
	// crash.
	JournalOpAccept = "accept"
	// JournalOpDone records that the job finished (status done or
	// failed). A job with no done record is resumed on boot replay; a
	// done job is kept pollable until its TTL expires.
	JournalOpDone = "done"
)

// JournalRecord is one line of the async-batch journal. Accept
// records carry the verbatim batch so replay can re-submit it to the
// engine; done records carry only the job id and timestamp.
type JournalRecord struct {
	Schema string `json:"schema"`
	Op     string `json:"op"`
	Job    string `json:"job"`
	// Unix is the wall-clock second the record was appended; replay
	// uses it to expire done jobs against the job TTL.
	Unix  int64         `json:"unix"`
	Batch *BatchRequest `json:"batch,omitempty"`
}
