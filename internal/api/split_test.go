package api

import (
	"errors"
	"fmt"
	"reflect"
	"testing"

	"wayplace/internal/sim"
)

func splitPool(n int) []RunRequest {
	geo := CacheGeometry{SizeBytes: 8 << 10, Ways: 8, LineBytes: 32}
	reqs := make([]RunRequest, n)
	for i := range reqs {
		reqs[i] = RunRequest{Workload: fmt.Sprintf("w%d", i), ICache: geo, Scheme: SchemeBaseline}
	}
	return reqs
}

func TestSplitBatchPartition(t *testing.T) {
	reqs := splitPool(10)
	subs := SplitBatch(reqs, 3, func(i int) int { return i % 3 })
	if len(subs) != 3 {
		t.Fatalf("got %d sub-batches, want 3", len(subs))
	}
	seen := make(map[int]bool)
	for si, sub := range subs {
		if si > 0 && subs[si-1].Owner >= sub.Owner {
			t.Errorf("sub-batches not in ascending owner order: %d then %d", subs[si-1].Owner, sub.Owner)
		}
		if len(sub.Indices) != len(sub.Requests) {
			t.Fatalf("owner %d: %d indices for %d requests", sub.Owner, len(sub.Indices), len(sub.Requests))
		}
		for j, orig := range sub.Indices {
			if orig%3 != sub.Owner {
				t.Errorf("cell %d routed to owner %d, want %d", orig, sub.Owner, orig%3)
			}
			if !reflect.DeepEqual(sub.Requests[j], reqs[orig]) {
				t.Errorf("owner %d slot %d does not hold original request %d", sub.Owner, j, orig)
			}
			if seen[orig] {
				t.Errorf("cell %d appears in two sub-batches", orig)
			}
			seen[orig] = true
		}
		// Relative order inside a sub-batch must be original order.
		for j := 1; j < len(sub.Indices); j++ {
			if sub.Indices[j-1] >= sub.Indices[j] {
				t.Errorf("owner %d indices out of order: %v", sub.Owner, sub.Indices)
			}
		}
	}
	if len(seen) != len(reqs) {
		t.Fatalf("split covered %d of %d cells", len(seen), len(reqs))
	}
}

func TestSplitBatchSkipsEmptyOwners(t *testing.T) {
	subs := SplitBatch(splitPool(4), 8, func(i int) int { return 5 })
	if len(subs) != 1 || subs[0].Owner != 5 || len(subs[0].Requests) != 4 {
		t.Fatalf("want one sub-batch with owner 5 holding 4 cells, got %+v", subs)
	}
}

func TestMergeSubResponsesRestoresOrder(t *testing.T) {
	reqs := splitPool(7)
	subs := SplitBatch(reqs, 2, func(i int) int { return i % 2 })
	resps := make([]*BatchResponse, len(subs))
	for si, sub := range subs {
		resp := &BatchResponse{APIVersion: Version, Status: StatusDone}
		for _, orig := range sub.Indices {
			resp.Results = append(resp.Results, RunResult{
				Request: reqs[orig],
				Key:     fmt.Sprintf("key-%d", orig),
				Stats:   &sim.RunStats{Instrs: uint64(orig)},
			})
		}
		resps[si] = resp
	}
	out := MergeSubResponses(len(reqs), subs, resps, make([]error, len(subs)))
	if out.Status != StatusDone || len(out.Errors) != 0 {
		t.Fatalf("merged status %q errors %v, want done/none", out.Status, out.Errors)
	}
	if len(out.Results) != len(reqs) {
		t.Fatalf("merged %d results, want %d", len(out.Results), len(reqs))
	}
	for i, rr := range out.Results {
		if rr.Key != fmt.Sprintf("key-%d", i) || rr.Stats == nil || rr.Stats.Instrs != uint64(i) {
			t.Errorf("result %d out of place: key %q stats %+v", i, rr.Key, rr.Stats)
		}
	}
}

func TestMergeSubResponsesRemapsFailureIndices(t *testing.T) {
	reqs := splitPool(6)
	subs := SplitBatch(reqs, 2, func(i int) int { return i % 2 })
	resps := make([]*BatchResponse, len(subs))
	errs := make([]error, len(subs))
	for si, sub := range subs {
		resp := &BatchResponse{APIVersion: Version, Status: StatusDone,
			Results: make([]RunResult, len(sub.Requests))}
		for j, orig := range sub.Indices {
			resp.Results[j] = RunResult{Request: reqs[orig], Key: fmt.Sprintf("key-%d", orig)}
		}
		resps[si] = resp
	}
	// Fail the second cell of the owner-1 sub-batch: original index 3.
	resps[1].Status = StatusFailed
	resps[1].Errors = []CellFailure{{Index: 1, Error: "boom"}}
	resps[1].Results[1].Stats = nil

	out := MergeSubResponses(len(reqs), subs, resps, errs)
	if out.Status != StatusFailed {
		t.Fatalf("merged status %q, want failed", out.Status)
	}
	if len(out.Errors) != 1 || out.Errors[0].Index != 3 || out.Errors[0].Error != "boom" {
		t.Fatalf("failure index not remapped: %+v", out.Errors)
	}
}

func TestMergeSubResponsesMissingSubFailsItsCells(t *testing.T) {
	reqs := splitPool(6)
	subs := SplitBatch(reqs, 3, func(i int) int { return i % 3 })
	resps := make([]*BatchResponse, len(subs))
	errs := make([]error, len(subs))
	for si, sub := range subs {
		if sub.Owner == 1 {
			errs[si] = errors.New("backend unreachable")
			continue
		}
		resp := &BatchResponse{APIVersion: Version, Status: StatusDone,
			Results: make([]RunResult, len(sub.Requests))}
		for j, orig := range sub.Indices {
			resp.Results[j] = RunResult{Request: reqs[orig], Stats: &sim.RunStats{Instrs: 1}}
		}
		resps[si] = resp
	}
	out := MergeSubResponses(len(reqs), subs, resps, errs)
	if out.Status != StatusFailed {
		t.Fatalf("merged status %q, want failed", out.Status)
	}
	if len(out.Errors) != 2 {
		t.Fatalf("got %d failures, want 2 (cells 1 and 4): %+v", len(out.Errors), out.Errors)
	}
	if out.Errors[0].Index != 1 || out.Errors[1].Index != 4 {
		t.Errorf("failure indices %d,%d want 1,4", out.Errors[0].Index, out.Errors[1].Index)
	}
	for _, f := range out.Errors {
		if f.Error != "backend unreachable" {
			t.Errorf("failure %d carries %q, want the sub-batch error", f.Index, f.Error)
		}
		if out.Results[f.Index].Stats != nil {
			t.Errorf("failed cell %d has stats", f.Index)
		}
	}
}
