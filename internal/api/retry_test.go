package api

import (
	"testing"
	"time"
)

func TestParseRetryAfter(t *testing.T) {
	now := time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC)
	cases := []struct {
		name  string
		value string
		want  time.Duration
		ok    bool
	}{
		{"absent", "", 0, false},
		{"blank", "   ", 0, false},
		{"delta seconds", "120", 120 * time.Second, true},
		{"delta one", "1", time.Second, true},
		{"delta zero is retry-immediately, not absent", "0", 0, true},
		{"negative delta is not valid delay-seconds", "-5", 0, false},
		{"garbage", "soon", 0, false},
		{"float is not delta-seconds", "1.5", 0, false},
		{"imf-fixdate in the future", "Sat, 08 Aug 2026 12:00:30 GMT", 30 * time.Second, true},
		{"imf-fixdate in the past clamps to zero", "Sat, 08 Aug 2026 11:59:00 GMT", 0, true},
		{"imf-fixdate exactly now", "Sat, 08 Aug 2026 12:00:00 GMT", 0, true},
		{"rfc850 date", "Saturday, 08-Aug-26 12:01:00 GMT", time.Minute, true},
		{"asctime date", "Sat Aug  8 12:00:10 2026", 10 * time.Second, true},
		{"truncated date", "Sat, 08 Aug", 0, false},
		{"leading space delta", " 42", 42 * time.Second, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got, ok := ParseRetryAfter(tc.value, now)
			if got != tc.want || ok != tc.ok {
				t.Fatalf("ParseRetryAfter(%q) = (%v, %v), want (%v, %v)",
					tc.value, got, ok, tc.want, tc.ok)
			}
		})
	}
}
