package api_test

import (
	"bytes"
	"encoding/json"
	"fmt"
	"testing"

	"wayplace/internal/api"
	"wayplace/internal/sim"
)

// streamResp builds a response with n results cycling a few shapes
// (healthy cells, a failed cell, escaping-hostile strings) so the
// byte-compat test covers every branch of the streaming encoder.
func streamResp(n int) *api.BatchResponse {
	resp := &api.BatchResponse{
		APIVersion: api.Version,
		JobID:      `job-<&>"quoted"`,
		Status:     api.StatusDone,
	}
	if n%2 == 1 {
		// Odd sizes carry a tenant echo so byte-compat covers both the
		// omitted and the present form of the field.
		resp.Tenant = "team-a"
	}
	for i := 0; i < n; i++ {
		rr := api.RunResult{
			Request: api.RunRequest{
				Workload: fmt.Sprintf("w%d", i%7),
				ICache:   api.CacheGeometry{SizeBytes: 8 << 10, Ways: 8, LineBytes: 32},
				Scheme:   api.SchemeBaseline,
			},
			Key:         fmt.Sprintf("key-%d", i),
			CacheHit:    i%2 == 0,
			WallSeconds: float64(i) / 1000,
			Stats:       &sim.RunStats{Instrs: uint64(i) * 1000},
		}
		if i%13 == 12 {
			rr.Stats = nil
			resp.Status = api.StatusFailed
			resp.Errors = append(resp.Errors, api.CellFailure{
				Index: i, Key: rr.Key, Error: "cell <failed> & gave up",
			})
		}
		resp.Results = append(resp.Results, rr)
	}
	return resp
}

// TestEncodeBatchResponseByteCompat: the streaming encoder and
// json.Encoder produce identical bytes — the v1 wire contract — for
// empty, small, failing and large responses.
func TestEncodeBatchResponseByteCompat(t *testing.T) {
	for _, n := range []int{0, 1, 3, 40, 4096} {
		resp := streamResp(n)
		var want bytes.Buffer
		if err := json.NewEncoder(&want).Encode(resp); err != nil {
			t.Fatal(err)
		}
		var got bytes.Buffer
		if err := api.EncodeBatchResponse(&got, resp); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if !bytes.Equal(got.Bytes(), want.Bytes()) {
			t.Errorf("n=%d: streamed bytes differ from json.Encoder\n got %.200s...\nwant %.200s...",
				n, got.String(), want.String())
		}
		// And the stream decodes back as one JSON object.
		var rt api.BatchResponse
		if err := json.Unmarshal(got.Bytes(), &rt); err != nil {
			t.Fatalf("n=%d: streamed body does not decode: %v", n, err)
		}
		if len(rt.Results) != n {
			t.Errorf("n=%d: round-trip lost results: %d", n, len(rt.Results))
		}
	}
}

// chunkRecorder records the largest single Write the encoder issues —
// a proxy for its transient buffering.
type chunkRecorder struct {
	total    int
	maxChunk int
}

func (c *chunkRecorder) Write(p []byte) (int, error) {
	c.total += len(p)
	if len(p) > c.maxChunk {
		c.maxChunk = len(p)
	}
	return len(p), nil
}

// TestEncodeBatchResponseBoundedChunks: a 4096-cell response is
// emitted in per-result chunks, never as one body-sized buffer — the
// memory-bounded property the serve layer relies on for huge grids.
func TestEncodeBatchResponseBoundedChunks(t *testing.T) {
	resp := streamResp(4096)
	var rec chunkRecorder
	if err := api.EncodeBatchResponse(&rec, resp); err != nil {
		t.Fatal(err)
	}
	if rec.total < 4096*100 {
		t.Fatalf("suspiciously small body: %d bytes", rec.total)
	}
	if rec.maxChunk*16 > rec.total {
		t.Errorf("largest write is %d of %d total bytes — the encoder buffered the body instead of streaming per result",
			rec.maxChunk, rec.total)
	}
}

// failWriter fails after the first write, so mid-stream errors
// propagate instead of silently truncating.
type failWriter struct{ writes int }

func (f *failWriter) Write(p []byte) (int, error) {
	f.writes++
	if f.writes > 1 {
		return 0, fmt.Errorf("connection reset")
	}
	return len(p), nil
}

func TestEncodeBatchResponseReportsWriteError(t *testing.T) {
	if err := api.EncodeBatchResponse(&failWriter{}, streamResp(4)); err == nil {
		t.Fatal("mid-stream write failure was swallowed")
	}
}
