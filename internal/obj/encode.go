package obj

// Binary serialisation of linked program images, so the layout pass's
// output is a real artifact: waylink can write the placed binary to
// disk and other tools can load and run or inspect it without
// rebuilding. The format is a simple sectioned container:
//
//	magic "WPL1" | header (entry, base, data base)
//	code section:   count, then count encoded instruction words
//	symbol section: count, then (name, addr) pairs, sorted by name
//	block section:  count, then placed-block records in address order
//	data section:   length, then raw bytes
//
// All integers are little-endian uint32 except section counts
// (uint32). Strings are uint16 length + bytes.

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"sort"

	"wayplace/internal/isa"
)

var imageMagic = [4]byte{'W', 'P', 'L', '1'}

type imageWriter struct {
	w   *bufio.Writer
	err error
}

func (iw *imageWriter) u32(v uint32) {
	if iw.err != nil {
		return
	}
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], v)
	_, iw.err = iw.w.Write(b[:])
}

func (iw *imageWriter) str(s string) {
	if iw.err != nil {
		return
	}
	if len(s) > 0xffff {
		iw.err = fmt.Errorf("obj: string too long (%d bytes)", len(s))
		return
	}
	var b [2]byte
	binary.LittleEndian.PutUint16(b[:], uint16(len(s)))
	if _, iw.err = iw.w.Write(b[:]); iw.err != nil {
		return
	}
	_, iw.err = iw.w.WriteString(s)
}

// WriteImage serialises the program.
func (p *Program) WriteImage(w io.Writer) error {
	iw := &imageWriter{w: bufio.NewWriter(w)}
	if _, err := iw.w.Write(imageMagic[:]); err != nil {
		return err
	}
	iw.u32(p.Entry)
	iw.u32(p.Base)
	iw.u32(p.DataBase)

	iw.u32(uint32(len(p.Words)))
	for _, word := range p.Words {
		iw.u32(word)
	}

	syms := make([]string, 0, len(p.Syms))
	for s := range p.Syms {
		syms = append(syms, s)
	}
	sort.Strings(syms)
	iw.u32(uint32(len(syms)))
	for _, s := range syms {
		iw.str(s)
		iw.u32(p.Syms[s])
	}

	iw.u32(uint32(len(p.Placed)))
	for _, pl := range p.Placed {
		iw.str(pl.Block.Sym)
		iw.str(pl.Block.Func)
		iw.u32(pl.Addr)
		iw.u32(uint32(pl.Block.NumInstrs()))
		iw.str(pl.Block.BranchSym)
		iw.str(pl.Block.FallSym)
		flag := uint32(0)
		if pl.Block.IsCall {
			flag = 1
		}
		iw.u32(flag)
	}

	iw.u32(uint32(len(p.Data)))
	if iw.err == nil {
		_, iw.err = iw.w.Write(p.Data)
	}
	if iw.err != nil {
		return iw.err
	}
	return iw.w.Flush()
}

type imageReader struct {
	r   *bufio.Reader
	err error
}

func (ir *imageReader) u32() uint32 {
	if ir.err != nil {
		return 0
	}
	var b [4]byte
	if _, ir.err = io.ReadFull(ir.r, b[:]); ir.err != nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b[:])
}

func (ir *imageReader) str() string {
	if ir.err != nil {
		return ""
	}
	var b [2]byte
	if _, ir.err = io.ReadFull(ir.r, b[:]); ir.err != nil {
		return ""
	}
	n := binary.LittleEndian.Uint16(b[:])
	buf := make([]byte, n)
	if _, ir.err = io.ReadFull(ir.r, buf); ir.err != nil {
		return ""
	}
	return string(buf)
}

// ReadImage loads a program serialised by WriteImage. The decoded
// instruction stream is reconstructed from the words, so a loaded
// image runs exactly like the original.
func ReadImage(r io.Reader) (*Program, error) {
	ir := &imageReader{r: bufio.NewReader(r)}
	var magic [4]byte
	if _, err := io.ReadFull(ir.r, magic[:]); err != nil {
		return nil, fmt.Errorf("obj: reading magic: %w", err)
	}
	if magic != imageMagic {
		return nil, fmt.Errorf("obj: bad magic %q", magic[:])
	}
	p := &Program{Syms: make(map[string]uint32)}
	p.Entry = ir.u32()
	p.Base = ir.u32()
	p.DataBase = ir.u32()

	nWords := ir.u32()
	if ir.err != nil {
		return nil, ir.err
	}
	if nWords > 1<<26 {
		return nil, fmt.Errorf("obj: implausible code size %d words", nWords)
	}
	p.Words = make([]uint32, nWords)
	p.Code = make([]isa.Instr, nWords)
	for i := range p.Words {
		p.Words[i] = ir.u32()
		if ir.err != nil {
			return nil, ir.err
		}
		in, err := isa.Decode(p.Words[i])
		if err != nil {
			return nil, fmt.Errorf("obj: word %d: %w", i, err)
		}
		p.Code[i] = in
	}

	nSyms := ir.u32()
	for i := uint32(0); i < nSyms && ir.err == nil; i++ {
		name := ir.str()
		p.Syms[name] = ir.u32()
	}

	nBlocks := ir.u32()
	codeIdx := 0
	for i := uint32(0); i < nBlocks && ir.err == nil; i++ {
		sym := ir.str()
		fn := ir.str()
		addr := ir.u32()
		n := ir.u32()
		branchSym := ir.str()
		fallSym := ir.str()
		isCall := ir.u32() == 1
		if ir.err != nil {
			break
		}
		if codeIdx+int(n) > len(p.Code) {
			return nil, fmt.Errorf("obj: block %s overruns the code section", sym)
		}
		blk := &Block{
			Sym: sym, Func: fn, Index: int(i),
			Instrs:    p.Code[codeIdx : codeIdx+int(n)],
			BranchSym: branchSym, FallSym: fallSym, IsCall: isCall,
		}
		p.Placed = append(p.Placed, Placed{Block: blk, Addr: addr})
		for k := 0; k < int(n); k++ {
			p.blockOf = append(p.blockOf, int(i))
		}
		codeIdx += int(n)
	}
	if ir.err == nil && codeIdx != len(p.Code) {
		return nil, fmt.Errorf("obj: blocks cover %d of %d instructions", codeIdx, len(p.Code))
	}

	nData := ir.u32()
	if ir.err != nil {
		return nil, ir.err
	}
	if nData > 1<<28 {
		return nil, fmt.Errorf("obj: implausible data size %d", nData)
	}
	p.Data = make([]byte, nData)
	if _, err := io.ReadFull(ir.r, p.Data); err != nil {
		return nil, fmt.Errorf("obj: reading data: %w", err)
	}
	return p, nil
}
