package obj

import (
	"strings"
	"testing"

	"wayplace/internal/isa"
)

// unit builds a minimal two-function unit by hand (no asm builder —
// these tests exercise obj's own invariants).
func unit() *Unit {
	mainEntry := &Block{
		Sym: "main", Func: "main", Index: 0,
		Instrs:    []isa.Instr{{Op: isa.MOVW, Rd: isa.R0, Imm: 1}, {Op: isa.BL, Cond: isa.AL}},
		BranchSym: "f", FallSym: "main.$1", IsCall: true,
	}
	mainEnd := &Block{
		Sym: "main.$1", Func: "main", Index: 1,
		Instrs: []isa.Instr{{Op: isa.HALT}},
	}
	f := &Block{
		Sym: "f", Func: "f", Index: 0,
		Instrs: []isa.Instr{{Op: isa.ADDI, Rd: isa.R0, Rn: isa.R0, Imm: 1}, {Op: isa.RET}},
	}
	return &Unit{
		Name: "t",
		Funcs: []*Func{
			{Name: "main", Blocks: []*Block{mainEntry, mainEnd}},
			{Name: "f", Blocks: []*Block{f}},
		},
	}
}

func TestValidateAcceptsWellFormed(t *testing.T) {
	if err := unit().Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
}

func TestValidateCatchesStructuralErrors(t *testing.T) {
	mutations := []struct {
		name   string
		mutate func(*Unit)
		want   string
	}{
		{"empty function", func(u *Unit) { u.Funcs[1].Blocks = nil }, "no blocks"},
		{"entry misnamed", func(u *Unit) { u.Funcs[1].Blocks[0].Sym = "g" }, "entry block"},
		{"wrong func owner", func(u *Unit) { u.Funcs[1].Blocks[0].Func = "other" }, "claims function"},
		{"empty block", func(u *Unit) { u.Funcs[1].Blocks[0].Instrs = nil }, "empty"},
		{"duplicate symbol", func(u *Unit) { u.Funcs[1].Blocks[0].Sym = "main"; u.Funcs[1].Name = "main" }, ""},
		{"dangling branch", func(u *Unit) { u.Funcs[0].Blocks[0].BranchSym = "ghost" }, "undefined"},
		{"dangling fall", func(u *Unit) { u.Funcs[0].Blocks[0].FallSym = "ghost" }, "undefined"},
		{"call unmarked", func(u *Unit) { u.Funcs[0].Blocks[0].IsCall = false }, "bl"},
		{"ret with successor", func(u *Unit) { u.Funcs[1].Blocks[0].FallSym = "main" }, "successors"},
		{"plain block no fall", func(u *Unit) {
			u.Funcs[0].Blocks[1].Instrs = []isa.Instr{{Op: isa.NOP}}
		}, "no fall-through"},
	}
	for _, m := range mutations {
		u := unit()
		m.mutate(u)
		err := u.Validate()
		if err == nil {
			t.Errorf("%s: Validate accepted the broken unit", m.name)
			continue
		}
		if m.want != "" && !strings.Contains(err.Error(), m.want) {
			t.Errorf("%s: error %q does not mention %q", m.name, err, m.want)
		}
	}
}

func TestValidateUncondBranchRules(t *testing.T) {
	u := unit()
	// Replace f's body with an unconditional branch to itself that
	// wrongly declares a fall-through.
	u.Funcs[1].Blocks[0].Instrs = []isa.Instr{{Op: isa.B, Cond: isa.AL}}
	u.Funcs[1].Blocks[0].BranchSym = "f"
	u.Funcs[1].Blocks[0].FallSym = "main"
	if err := u.Validate(); err == nil {
		t.Error("unconditional branch with fall-through accepted")
	}
	u.Funcs[1].Blocks[0].FallSym = ""
	if err := u.Validate(); err != nil {
		t.Errorf("self-loop unconditional branch rejected: %v", err)
	}
	// Conditional branch requires a fall-through.
	u.Funcs[1].Blocks[0].Instrs[0].Cond = isa.EQ
	if err := u.Validate(); err == nil {
		t.Error("conditional branch without fall-through accepted")
	}
}

func TestLinkProducesDecodableImage(t *testing.T) {
	u := unit()
	p, err := Link(u, OriginalOrder(u), 0x4000)
	if err != nil {
		t.Fatalf("Link: %v", err)
	}
	if p.Size() != uint32(len(p.Code))*isa.InstrBytes {
		t.Error("Size inconsistent with Code length")
	}
	for i, w := range p.Words {
		d, err := isa.Decode(w)
		if err != nil {
			t.Fatalf("word %d undecodable: %v", i, err)
		}
		if d != p.Code[i] {
			t.Errorf("word %d decodes to %v, want %v", i, d, p.Code[i])
		}
	}
	// Placed metadata is address-ordered and contiguous.
	next := p.Base
	for _, pl := range p.Placed {
		if pl.Addr != next {
			t.Errorf("block %s at %#x, want %#x", pl.Block.Sym, pl.Addr, next)
		}
		next += pl.Block.Size()
	}
}

func TestLinkDataImageIsCopied(t *testing.T) {
	u := unit()
	u.DataBase = 0x100
	u.Data = []byte{1, 2, 3}
	p, err := Link(u, OriginalOrder(u), 0)
	if err != nil {
		t.Fatal(err)
	}
	u.Data[0] = 99
	if p.Data[0] != 1 {
		t.Error("program data aliases the unit's buffer")
	}
}

func TestSortPlacedByAddr(t *testing.T) {
	u := unit()
	p, _ := Link(u, OriginalOrder(u), 0)
	shuffled := []Placed{p.Placed[2], p.Placed[0], p.Placed[1]}
	SortPlacedByAddr(shuffled)
	for i := 1; i < len(shuffled); i++ {
		if shuffled[i-1].Addr > shuffled[i].Addr {
			t.Fatal("not sorted")
		}
	}
}
