package obj

import (
	"bytes"
	"strings"
	"testing"
)

func roundTrip(t *testing.T, p *Program) *Program {
	t.Helper()
	var buf bytes.Buffer
	if err := p.WriteImage(&buf); err != nil {
		t.Fatalf("WriteImage: %v", err)
	}
	q, err := ReadImage(&buf)
	if err != nil {
		t.Fatalf("ReadImage: %v", err)
	}
	return q
}

func TestImageRoundTrip(t *testing.T) {
	u := unit()
	u.DataBase = 0x40_0000
	u.Data = []byte{1, 2, 3, 4, 5, 6, 7}
	p, err := Link(u, OriginalOrder(u), 0x1_0000)
	if err != nil {
		t.Fatal(err)
	}
	q := roundTrip(t, p)

	if q.Entry != p.Entry || q.Base != p.Base || q.DataBase != p.DataBase {
		t.Errorf("header mismatch: %+v vs %+v", q, p)
	}
	if len(q.Words) != len(p.Words) {
		t.Fatalf("word counts differ")
	}
	for i := range p.Words {
		if q.Words[i] != p.Words[i] {
			t.Errorf("word %d: %#x vs %#x", i, q.Words[i], p.Words[i])
		}
		if q.Code[i] != p.Code[i] {
			t.Errorf("code %d: %v vs %v", i, q.Code[i], p.Code[i])
		}
	}
	if len(q.Syms) != len(p.Syms) {
		t.Fatalf("symbol counts differ")
	}
	for s, a := range p.Syms {
		if q.Syms[s] != a {
			t.Errorf("symbol %s: %#x vs %#x", s, q.Syms[s], a)
		}
	}
	if len(q.Placed) != len(p.Placed) {
		t.Fatalf("block counts differ")
	}
	for i := range p.Placed {
		a, b := p.Placed[i], q.Placed[i]
		if a.Addr != b.Addr || a.Block.Sym != b.Block.Sym ||
			a.Block.Func != b.Block.Func ||
			a.Block.NumInstrs() != b.Block.NumInstrs() ||
			a.Block.BranchSym != b.Block.BranchSym ||
			a.Block.FallSym != b.Block.FallSym ||
			a.Block.IsCall != b.Block.IsCall {
			t.Errorf("block %d differs: %+v vs %+v", i, b, a)
		}
	}
	if !bytes.Equal(q.Data, p.Data) {
		t.Error("data sections differ")
	}
	// Index helpers must work on the loaded image.
	if blk := q.BlockAt(0); blk == nil || blk.Block.Sym != "main" {
		t.Errorf("BlockAt(0) on loaded image = %+v", blk)
	}
	if i, ok := q.IndexOf(q.Entry); !ok || i != 0 {
		t.Errorf("IndexOf(entry) = %d,%v", i, ok)
	}
}

func TestReadImageRejectsGarbage(t *testing.T) {
	cases := []struct {
		name string
		data []byte
	}{
		{"empty", nil},
		{"bad magic", []byte("NOPE0000000000000000")},
		{"truncated header", []byte("WPL1\x01\x00")},
	}
	for _, c := range cases {
		if _, err := ReadImage(bytes.NewReader(c.data)); err == nil {
			t.Errorf("%s: ReadImage succeeded", c.name)
		}
	}
}

func TestReadImageRejectsImplausibleSizes(t *testing.T) {
	var buf bytes.Buffer
	buf.WriteString("WPL1")
	for i := 0; i < 3; i++ {
		buf.Write([]byte{0, 0, 0, 0})
	}
	buf.Write([]byte{0xff, 0xff, 0xff, 0xff}) // 4G instruction words
	if _, err := ReadImage(&buf); err == nil ||
		!strings.Contains(err.Error(), "implausible") {
		t.Errorf("huge code size accepted: %v", err)
	}
}

func TestWriteImageDeterministic(t *testing.T) {
	u := unit()
	p, err := Link(u, OriginalOrder(u), 0)
	if err != nil {
		t.Fatal(err)
	}
	var a, b bytes.Buffer
	if err := p.WriteImage(&a); err != nil {
		t.Fatal(err)
	}
	if err := p.WriteImage(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Error("WriteImage not deterministic")
	}
}
