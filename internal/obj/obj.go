// Package obj defines the object-code representation that sits between
// the program builder (internal/asm) and the link-time layout pass
// (internal/cfg, internal/layout), plus the linker that turns an
// ordered list of basic blocks into a final executable image.
//
// It plays the role of the object files and libraries that the paper's
// Diablo-based pass reads: code is kept as symbolic basic blocks with
// unresolved branch targets, so the layout pass is free to reorder
// blocks before addresses are assigned.
package obj

import (
	"fmt"
	"sort"

	"wayplace/internal/isa"
)

// Block is one basic block: a straight-line run of instructions with a
// single entry (its symbol) and a terminator described by the target
// fields. Branch displacements inside Instrs are left as zero and are
// patched by the linker.
type Block struct {
	Sym    string // globally unique label, "func" or "func.N"
	Func   string // owning function
	Index  int    // position within the function's original order
	Instrs []isa.Instr

	// BranchSym is the control-flow target of a terminating branch or
	// call ("" if the block does not end in B/BL).
	BranchSym string
	// FallSym names the block that must be placed immediately after
	// this one: the fall-through successor of a conditional branch or
	// plain fall-through, or the return continuation of a call ("" if
	// the block ends the instruction stream unconditionally).
	FallSym string
	// IsCall records that the terminator is a BL, so FallSym is a
	// call/return-site pairing rather than a branch fall-through.
	IsCall bool
}

// NumInstrs returns the number of instructions in the block.
func (b *Block) NumInstrs() int { return len(b.Instrs) }

// Size returns the block size in bytes.
func (b *Block) Size() uint32 { return uint32(len(b.Instrs)) * isa.InstrBytes }

// Func is an ordered collection of basic blocks; Blocks[0] is the
// entry block and carries the function's name as its symbol.
type Func struct {
	Name   string
	Blocks []*Block
}

// Unit is one object file: the output of compiling one translation
// unit with the program builder.
type Unit struct {
	Name  string
	Funcs []*Func
	// DataBase/Data describe the unit's initialised data image. Data
	// addresses are assigned by the front end and never move during
	// code layout, so code references them by absolute address with no
	// relocations (see internal/asm).
	DataBase uint32
	Data     []byte
}

// Blocks returns every block of every function in original order.
func (u *Unit) Blocks() []*Block {
	var out []*Block
	for _, f := range u.Funcs {
		out = append(out, f.Blocks...)
	}
	return out
}

// Validate checks structural invariants: unique symbols, resolvable
// targets, fall-through targets that exist, and non-empty blocks.
func (u *Unit) Validate() error {
	syms := make(map[string]*Block)
	for _, f := range u.Funcs {
		if len(f.Blocks) == 0 {
			return fmt.Errorf("obj: function %s has no blocks", f.Name)
		}
		if f.Blocks[0].Sym != f.Name {
			return fmt.Errorf("obj: function %s entry block is %q", f.Name, f.Blocks[0].Sym)
		}
		for _, b := range f.Blocks {
			if b.Func != f.Name {
				return fmt.Errorf("obj: block %s claims function %s inside %s", b.Sym, b.Func, f.Name)
			}
			if len(b.Instrs) == 0 {
				return fmt.Errorf("obj: block %s is empty", b.Sym)
			}
			if prev, dup := syms[b.Sym]; dup {
				return fmt.Errorf("obj: duplicate symbol %s (functions %s and %s)", b.Sym, prev.Func, b.Func)
			}
			syms[b.Sym] = b
		}
	}
	for _, f := range u.Funcs {
		for _, b := range f.Blocks {
			if b.BranchSym != "" {
				if _, ok := syms[b.BranchSym]; !ok {
					return fmt.Errorf("obj: block %s branches to undefined symbol %s", b.Sym, b.BranchSym)
				}
			}
			if b.FallSym != "" {
				if _, ok := syms[b.FallSym]; !ok {
					return fmt.Errorf("obj: block %s falls through to undefined symbol %s", b.Sym, b.FallSym)
				}
			}
			last := b.Instrs[len(b.Instrs)-1]
			switch {
			case last.Op == isa.BL:
				if !b.IsCall || b.BranchSym == "" {
					return fmt.Errorf("obj: block %s ends in bl but is not marked as a call with a target", b.Sym)
				}
			case last.Op == isa.B:
				if b.BranchSym == "" {
					return fmt.Errorf("obj: block %s ends in b with no target symbol", b.Sym)
				}
				if last.Cond == isa.AL && b.FallSym != "" {
					return fmt.Errorf("obj: block %s ends in unconditional b but has fall-through %s", b.Sym, b.FallSym)
				}
				if last.Cond != isa.AL && b.FallSym == "" {
					return fmt.Errorf("obj: block %s ends in conditional branch with no fall-through", b.Sym)
				}
			case last.Op == isa.RET || last.Op == isa.HALT:
				if b.FallSym != "" || b.BranchSym != "" {
					return fmt.Errorf("obj: block %s ends in %v but has successors", b.Sym, last.Op)
				}
			default:
				if b.FallSym == "" {
					return fmt.Errorf("obj: block %s ends in %v with no fall-through", b.Sym, last.Op)
				}
				if b.BranchSym != "" {
					return fmt.Errorf("obj: block %s has branch target %s but no terminating branch", b.Sym, b.BranchSym)
				}
			}
		}
	}
	return nil
}

// Placed records where a block landed in the linked image.
type Placed struct {
	Block *Block
	Addr  uint32 // address of the first instruction
}

// Program is a fully linked executable image.
type Program struct {
	Entry    uint32 // address of main's first instruction
	Base     uint32 // address of the first instruction of the image
	Code     []isa.Instr
	Words    []uint32 // encoded form of Code
	Syms     map[string]uint32
	Placed   []Placed
	DataBase uint32
	Data     []byte

	// blockOf maps instruction index -> index into Placed, used to
	// aggregate per-instruction profiles back onto blocks.
	blockOf []int
}

// Size returns the code image size in bytes.
func (p *Program) Size() uint32 { return uint32(len(p.Code)) * isa.InstrBytes }

// AddrOf returns the address of a symbol.
func (p *Program) AddrOf(sym string) (uint32, bool) {
	a, ok := p.Syms[sym]
	return a, ok
}

// IndexOf converts an instruction address into an index into Code.
// ok is false when the address is outside the image or misaligned.
func (p *Program) IndexOf(addr uint32) (int, bool) {
	if addr < p.Base || addr%isa.InstrBytes != 0 {
		return 0, false
	}
	i := int((addr - p.Base) / isa.InstrBytes)
	if i >= len(p.Code) {
		return 0, false
	}
	return i, true
}

// BlockAt returns the placed block containing the instruction at Code
// index i.
func (p *Program) BlockAt(i int) *Placed {
	if i < 0 || i >= len(p.blockOf) {
		return nil
	}
	return &p.Placed[p.blockOf[i]]
}

// Link lays the given blocks out in order starting at base, assigns
// addresses, patches branch displacements and encodes the result.
// The order must contain every block exactly once and must respect
// every FallSym constraint (the linker verifies this, because a
// violated call/return pairing or fall-through would change program
// semantics, not just its layout).
func Link(u *Unit, order []*Block, base uint32) (*Program, error) {
	if base%isa.InstrBytes != 0 {
		return nil, fmt.Errorf("obj: base address %#x is not instruction-aligned", base)
	}
	all := u.Blocks()
	if len(order) != len(all) {
		return nil, fmt.Errorf("obj: order has %d blocks, unit has %d", len(order), len(all))
	}
	seen := make(map[string]bool, len(order))
	for _, b := range order {
		if seen[b.Sym] {
			return nil, fmt.Errorf("obj: block %s appears twice in order", b.Sym)
		}
		seen[b.Sym] = true
	}
	for _, b := range all {
		if !seen[b.Sym] {
			return nil, fmt.Errorf("obj: block %s missing from order", b.Sym)
		}
	}
	for i, b := range order {
		if b.FallSym == "" {
			continue
		}
		if i+1 >= len(order) || order[i+1].Sym != b.FallSym {
			return nil, fmt.Errorf("obj: order violates fall-through %s -> %s", b.Sym, b.FallSym)
		}
	}

	p := &Program{
		Base:     base,
		Syms:     make(map[string]uint32),
		DataBase: u.DataBase,
		Data:     append([]byte(nil), u.Data...),
	}
	addr := base
	for bi, b := range order {
		p.Syms[b.Sym] = addr
		p.Placed = append(p.Placed, Placed{Block: b, Addr: addr})
		for range b.Instrs {
			p.blockOf = append(p.blockOf, bi)
		}
		addr += b.Size()
	}
	for _, b := range order {
		for k, in := range b.Instrs {
			if (in.Op == isa.B || in.Op == isa.BL) && k == len(b.Instrs)-1 {
				target, ok := p.Syms[b.BranchSym]
				if !ok {
					return nil, fmt.Errorf("obj: unresolved symbol %s", b.BranchSym)
				}
				pc := p.Syms[b.Sym] + uint32(k)*isa.InstrBytes
				// target = pc + 4 + disp*4
				disp := (int64(target) - int64(pc) - isa.InstrBytes) / isa.InstrBytes
				in.Imm = int32(disp)
			}
			p.Code = append(p.Code, in)
			w, err := isa.Encode(in)
			if err != nil {
				return nil, fmt.Errorf("obj: block %s instr %d: %w", b.Sym, k, err)
			}
			p.Words = append(p.Words, w)
		}
	}
	entry, ok := p.Syms["main"]
	if !ok {
		return nil, fmt.Errorf("obj: no main function")
	}
	p.Entry = entry
	return p, nil
}

// OriginalOrder returns the unit's blocks in their original
// (compilation) order: the layout the paper's baseline uses.
func OriginalOrder(u *Unit) []*Block { return u.Blocks() }

// SortPlacedByAddr is a test helper ordering placed blocks by address.
func SortPlacedByAddr(placed []Placed) {
	sort.Slice(placed, func(i, j int) bool { return placed[i].Addr < placed[j].Addr })
}
