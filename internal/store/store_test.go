package store

import (
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"wayplace/internal/obs"
	"wayplace/internal/sim"
)

func testStats(seed uint64) *sim.RunStats {
	return &sim.RunStats{
		Instrs:   1000 + seed,
		Cycles:   2000 + seed,
		Checksum: uint32(seed),
		MemHash:  0xdead_beef + seed,
	}
}

func openTestStore(t *testing.T, dir string, reg *obs.Registry) *Store {
	t.Helper()
	s, err := Open(Options{Dir: dir, Registry: reg, Fingerprint: "fp-test"})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

func TestStoreRoundTrip(t *testing.T) {
	reg := obs.NewRegistry()
	s := openTestStore(t, t.TempDir(), reg)

	key := "rs2|roundtrip"
	want := testStats(7)
	changes := []sim.AreaChange{{AtInstr: 10, Size: 1024}, {AtInstr: 20, Size: 2048}}
	if err := s.Put(key, want, changes); err != nil {
		t.Fatal(err)
	}
	stats, gotChanges, ok := s.Load(key)
	if !ok {
		t.Fatal("Load after Put: miss")
	}
	if !reflect.DeepEqual(stats, want) {
		t.Errorf("stats round-trip: got %+v, want %+v", stats, want)
	}
	if !reflect.DeepEqual(gotChanges, changes) {
		t.Errorf("area changes round-trip: got %+v, want %+v", gotChanges, changes)
	}
	if _, _, ok := s.Load("rs2|absent"); ok {
		t.Error("Load of absent key reported a hit")
	}
	if got := reg.Counter(MetricHits).Value(); got != 1 {
		t.Errorf("%s = %d, want 1", MetricHits, got)
	}
	if got := reg.Counter(MetricMisses).Value(); got != 1 {
		t.Errorf("%s = %d, want 1", MetricMisses, got)
	}
	if got := reg.Counter(MetricWrites).Value(); got != 1 {
		t.Errorf("%s = %d, want 1", MetricWrites, got)
	}
}

func TestStoreWriteBehindFlush(t *testing.T) {
	reg := obs.NewRegistry()
	s := openTestStore(t, t.TempDir(), reg)

	for i := uint64(0); i < 20; i++ {
		s.Save("rs2|wb|"+string(rune('a'+i)), testStats(i), nil)
	}
	s.Flush()
	for i := uint64(0); i < 20; i++ {
		if _, _, ok := s.Load("rs2|wb|" + string(rune('a'+i))); !ok {
			t.Fatalf("key %d not durable after Flush", i)
		}
	}
	if got := reg.Counter(MetricWrites).Value(); got != 20 {
		t.Errorf("%s = %d, want 20", MetricWrites, got)
	}
}

// The store survives its own lifecycle edges: Save and Flush after
// Close are silent no-ops, Close is idempotent.
func TestStoreSaveAfterClose(t *testing.T) {
	s := openTestStore(t, t.TempDir(), nil)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s.Save("rs2|late", testStats(1), nil) // must not panic
	s.Flush()                             // must not hang or panic
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
}

// A store directory is pinned to the base-config fingerprint it was
// created under: reopening under a different base must be refused,
// or cells computed on one machine template would alias another's.
func TestStoreFingerprintPinning(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(Options{Dir: dir, Fingerprint: "base-A"})
	if err != nil {
		t.Fatal(err)
	}
	s.Close()

	s, err = Open(Options{Dir: dir, Fingerprint: "base-A"})
	if err != nil {
		t.Fatalf("reopen under the same fingerprint: %v", err)
	}
	s.Close()

	if _, err := Open(Options{Dir: dir, Fingerprint: "base-B"}); err == nil {
		t.Fatal("open under a different base-config fingerprint succeeded; want refusal")
	} else if !strings.Contains(err.Error(), "base-A") {
		t.Errorf("mismatch error %q does not name the pinned fingerprint", err)
	}
}

func TestFingerprintDistinguishesConfigs(t *testing.T) {
	a := sim.Default()
	b := sim.Default()
	b.MaxInstrs++
	if Fingerprint(a) == Fingerprint(b) {
		t.Error("distinct configs share a fingerprint")
	}
	if Fingerprint(a) != Fingerprint(sim.Default()) {
		t.Error("equal configs fingerprint differently")
	}
}

// Corrupt objects — truncated writes that somehow became visible,
// bit rot, hand-edited files — are counted misses, never crashes,
// and fsck pinpoints every one of them.
func TestStoreCorruptObjects(t *testing.T) {
	reg := obs.NewRegistry()
	dir := t.TempDir()
	s := openTestStore(t, dir, reg)

	keys := []string{"rs2|ok", "rs2|truncated", "rs2|garbage", "rs2|wrongschema"}
	for i, key := range keys {
		if err := s.Put(key, testStats(uint64(i)), nil); err != nil {
			t.Fatal(err)
		}
	}
	// Truncate one object mid-JSON, overwrite one with garbage, and
	// retag one with an unknown schema.
	truncPath := objectPath(dir, "rs2|truncated")
	data, err := os.ReadFile(truncPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(truncPath, data[:len(data)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(objectPath(dir, "rs2|garbage"), []byte("\x00\xff not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	retagged := []byte(strings.Replace(string(mustRead(t, objectPath(dir, "rs2|wrongschema"))),
		"wpstore/v1", "wpstore/v0", 1))
	if err := os.WriteFile(objectPath(dir, "rs2|wrongschema"), retagged, 0o644); err != nil {
		t.Fatal(err)
	}

	for _, key := range keys[1:] {
		if _, _, ok := s.Load(key); ok {
			t.Errorf("Load(%q) returned a corrupt object as a hit", key)
		}
	}
	if _, _, ok := s.Load("rs2|ok"); !ok {
		t.Error("intact object no longer loads")
	}
	if got := reg.Counter(MetricCorrupt).Value(); got != 3 {
		t.Errorf("%s = %d, want 3", MetricCorrupt, got)
	}

	rep, err := Fsck(dir)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Objects != 1 || len(rep.Corrupt) != 3 {
		t.Errorf("Fsck = %d ok / %d corrupt, want 1/3: %v", rep.Objects, len(rep.Corrupt), rep.Corrupt)
	}
}

// An object whose embedded key does not re-hash to its filename is
// corruption only fsck can see (Load by the embedded key would read a
// different path), which is exactly why -store-fsck exists.
func TestFsckDetectsMisplacedObject(t *testing.T) {
	dir := t.TempDir()
	s := openTestStore(t, dir, nil)
	if err := s.Put("rs2|original", testStats(1), nil); err != nil {
		t.Fatal(err)
	}
	src := objectPath(dir, "rs2|original")
	dst := objectPath(dir, "rs2|imposter")
	if err := os.MkdirAll(filepath.Dir(dst), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(dst, mustRead(t, src), 0o644); err != nil {
		t.Fatal(err)
	}
	rep, err := Fsck(dir)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Objects != 1 || len(rep.Corrupt) != 1 {
		t.Errorf("Fsck = %d ok / %d corrupt, want 1/1: %v", rep.Objects, len(rep.Corrupt), rep.Corrupt)
	}
}

func TestFsckEmptyStore(t *testing.T) {
	rep, err := Fsck(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Objects != 0 || len(rep.Corrupt) != 0 {
		t.Errorf("empty store Fsck = %+v, want clean zero", rep)
	}
}

func mustRead(t *testing.T, path string) []byte {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return data
}
