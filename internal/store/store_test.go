package store

import (
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"wayplace/internal/obs"
	"wayplace/internal/sim"
)

func testStats(seed uint64) *sim.RunStats {
	return &sim.RunStats{
		Instrs:   1000 + seed,
		Cycles:   2000 + seed,
		Checksum: uint32(seed),
		MemHash:  0xdead_beef + seed,
	}
}

func openTestStore(t *testing.T, dir string, reg *obs.Registry) *Store {
	t.Helper()
	s, err := Open(Options{Dir: dir, Registry: reg, Fingerprint: "fp-test"})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

func TestStoreRoundTrip(t *testing.T) {
	reg := obs.NewRegistry()
	s := openTestStore(t, t.TempDir(), reg)

	key := "rs2|roundtrip"
	want := testStats(7)
	changes := []sim.AreaChange{{AtInstr: 10, Size: 1024}, {AtInstr: 20, Size: 2048}}
	if err := s.Put(key, want, changes); err != nil {
		t.Fatal(err)
	}
	stats, gotChanges, ok := s.Load(key)
	if !ok {
		t.Fatal("Load after Put: miss")
	}
	if !reflect.DeepEqual(stats, want) {
		t.Errorf("stats round-trip: got %+v, want %+v", stats, want)
	}
	if !reflect.DeepEqual(gotChanges, changes) {
		t.Errorf("area changes round-trip: got %+v, want %+v", gotChanges, changes)
	}
	if _, _, ok := s.Load("rs2|absent"); ok {
		t.Error("Load of absent key reported a hit")
	}
	if got := reg.Counter(MetricHits).Value(); got != 1 {
		t.Errorf("%s = %d, want 1", MetricHits, got)
	}
	if got := reg.Counter(MetricMisses).Value(); got != 1 {
		t.Errorf("%s = %d, want 1", MetricMisses, got)
	}
	if got := reg.Counter(MetricWrites).Value(); got != 1 {
		t.Errorf("%s = %d, want 1", MetricWrites, got)
	}
}

func TestStoreWriteBehindFlush(t *testing.T) {
	reg := obs.NewRegistry()
	s := openTestStore(t, t.TempDir(), reg)

	for i := uint64(0); i < 20; i++ {
		s.Save("rs2|wb|"+string(rune('a'+i)), testStats(i), nil)
	}
	s.Flush()
	for i := uint64(0); i < 20; i++ {
		if _, _, ok := s.Load("rs2|wb|" + string(rune('a'+i))); !ok {
			t.Fatalf("key %d not durable after Flush", i)
		}
	}
	if got := reg.Counter(MetricWrites).Value(); got != 20 {
		t.Errorf("%s = %d, want 20", MetricWrites, got)
	}
}

// The store survives its own lifecycle edges: Save and Flush after
// Close are silent no-ops, Close is idempotent.
func TestStoreSaveAfterClose(t *testing.T) {
	s := openTestStore(t, t.TempDir(), nil)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s.Save("rs2|late", testStats(1), nil) // must not panic
	s.Flush()                             // must not hang or panic
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
}

// A store directory is pinned to the base-config fingerprint it was
// created under: reopening under a different base must be refused,
// or cells computed on one machine template would alias another's.
func TestStoreFingerprintPinning(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(Options{Dir: dir, Fingerprint: "base-A"})
	if err != nil {
		t.Fatal(err)
	}
	s.Close()

	s, err = Open(Options{Dir: dir, Fingerprint: "base-A"})
	if err != nil {
		t.Fatalf("reopen under the same fingerprint: %v", err)
	}
	s.Close()

	if _, err := Open(Options{Dir: dir, Fingerprint: "base-B"}); err == nil {
		t.Fatal("open under a different base-config fingerprint succeeded; want refusal")
	} else if !strings.Contains(err.Error(), "base-A") {
		t.Errorf("mismatch error %q does not name the pinned fingerprint", err)
	}
}

func TestFingerprintDistinguishesConfigs(t *testing.T) {
	a := sim.Default()
	b := sim.Default()
	b.MaxInstrs++
	if Fingerprint(a) == Fingerprint(b) {
		t.Error("distinct configs share a fingerprint")
	}
	if Fingerprint(a) != Fingerprint(sim.Default()) {
		t.Error("equal configs fingerprint differently")
	}
}

// Corrupt objects — truncated writes that somehow became visible,
// bit rot, hand-edited files — are counted misses, never crashes,
// and fsck pinpoints every one of them.
func TestStoreCorruptObjects(t *testing.T) {
	reg := obs.NewRegistry()
	dir := t.TempDir()
	s := openTestStore(t, dir, reg)

	keys := []string{"rs2|ok", "rs2|truncated", "rs2|garbage", "rs2|wrongschema"}
	for i, key := range keys {
		if err := s.Put(key, testStats(uint64(i)), nil); err != nil {
			t.Fatal(err)
		}
	}
	// Truncate one object mid-JSON, overwrite one with garbage, and
	// retag one with an unknown schema.
	truncPath := objectPath(dir, "rs2|truncated")
	data, err := os.ReadFile(truncPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(truncPath, data[:len(data)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(objectPath(dir, "rs2|garbage"), []byte("\x00\xff not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	retagged := []byte(strings.Replace(string(mustRead(t, objectPath(dir, "rs2|wrongschema"))),
		"wpstore/v1", "wpstore/v0", 1))
	if err := os.WriteFile(objectPath(dir, "rs2|wrongschema"), retagged, 0o644); err != nil {
		t.Fatal(err)
	}

	for _, key := range keys[1:] {
		if _, _, ok := s.Load(key); ok {
			t.Errorf("Load(%q) returned a corrupt object as a hit", key)
		}
	}
	if _, _, ok := s.Load("rs2|ok"); !ok {
		t.Error("intact object no longer loads")
	}
	if got := reg.Counter(MetricCorrupt).Value(); got != 3 {
		t.Errorf("%s = %d, want 3", MetricCorrupt, got)
	}

	rep, err := Fsck(dir)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Objects != 1 || len(rep.Corrupt) != 3 {
		t.Errorf("Fsck = %d ok / %d corrupt, want 1/3: %v", rep.Objects, len(rep.Corrupt), rep.Corrupt)
	}
}

// An object whose embedded key does not re-hash to its filename is
// corruption only fsck can see (Load by the embedded key would read a
// different path), which is exactly why -store-fsck exists.
func TestFsckDetectsMisplacedObject(t *testing.T) {
	dir := t.TempDir()
	s := openTestStore(t, dir, nil)
	if err := s.Put("rs2|original", testStats(1), nil); err != nil {
		t.Fatal(err)
	}
	src := objectPath(dir, "rs2|original")
	dst := objectPath(dir, "rs2|imposter")
	if err := os.MkdirAll(filepath.Dir(dst), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(dst, mustRead(t, src), 0o644); err != nil {
		t.Fatal(err)
	}
	rep, err := Fsck(dir)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Objects != 1 || len(rep.Corrupt) != 1 {
		t.Errorf("Fsck = %d ok / %d corrupt, want 1/1: %v", rep.Objects, len(rep.Corrupt), rep.Corrupt)
	}
}

func TestFsckEmptyStore(t *testing.T) {
	rep, err := Fsck(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Objects != 0 || len(rep.Corrupt) != 0 {
		t.Errorf("empty store Fsck = %+v, want clean zero", rep)
	}
}

func mustRead(t *testing.T, path string) []byte {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

func TestOpenReadOnlyRefusesWrites(t *testing.T) {
	dir := t.TempDir()
	w := openTestStore(t, dir, nil)
	if err := w.Put("rs2|ro-seed", testStats(1), nil); err != nil {
		t.Fatal(err)
	}
	w.Close()

	ro, err := OpenReadOnly(Options{Dir: dir, Fingerprint: "fp-test"})
	if err != nil {
		t.Fatal(err)
	}
	defer ro.Close()
	if !ro.ReadOnly() {
		t.Error("ReadOnly() = false on a read-only open")
	}
	if stats, _, ok := ro.Load("rs2|ro-seed"); !ok || stats.Instrs != testStats(1).Instrs {
		t.Fatalf("read-only Load of seeded key: ok=%v stats=%+v", ok, stats)
	}
	if err := ro.Put("rs2|ro-new", testStats(2), nil); err == nil {
		t.Error("Put succeeded on a read-only store")
	}
	// Save must neither block (no writer goroutine) nor write.
	ro.Save("rs2|ro-saved", testStats(3), nil)
	ro.Flush()
	if _, err := os.Stat(objectPath(dir, "rs2|ro-saved")); !os.IsNotExist(err) {
		t.Errorf("Save on a read-only store reached disk (stat err %v)", err)
	}
	// Close twice: idempotent without a writer to stop.
	ro.Close()
	ro.Close()
}

func TestOpenReadOnlyRequiresInitialisedStore(t *testing.T) {
	if _, err := OpenReadOnly(Options{Dir: filepath.Join(t.TempDir(), "missing")}); err == nil {
		t.Error("read-only open of a missing directory succeeded")
	}
	// An existing but never-initialised directory is refused too — and
	// left untouched (no meta.json materialised).
	dir := t.TempDir()
	if _, err := OpenReadOnly(Options{Dir: dir}); err == nil {
		t.Error("read-only open of an uninitialised directory succeeded")
	}
	if _, err := os.Stat(filepath.Join(dir, "meta.json")); !os.IsNotExist(err) {
		t.Errorf("read-only open initialised meta.json (stat err %v)", err)
	}
}

func TestOpenReadOnlyChecksFingerprint(t *testing.T) {
	dir := t.TempDir()
	openTestStore(t, dir, nil).Close()
	if _, err := OpenReadOnly(Options{Dir: dir, Fingerprint: "fp-other"}); err == nil {
		t.Error("read-only open under a different fingerprint succeeded")
	}
	if _, err := OpenReadOnly(Options{Dir: dir, Fingerprint: "fp-test"}); err != nil {
		t.Errorf("read-only open under the matching fingerprint failed: %v", err)
	}
}

// TestReadOnlyReadersConcurrentWithWriter is the sharing contract a
// fleet relies on: many read-only opens observe a writer's atomic
// object writes, each key appearing complete or not at all.
func TestReadOnlyReadersConcurrentWithWriter(t *testing.T) {
	const keys = 64
	const readers = 4
	dir := t.TempDir()
	w := openTestStore(t, dir, nil)

	ros := make([]*Store, readers)
	for i := range ros {
		ro, err := OpenReadOnly(Options{Dir: dir, Fingerprint: "fp-test"})
		if err != nil {
			t.Fatal(err)
		}
		defer ro.Close()
		ros[i] = ro
	}

	var wg sync.WaitGroup
	errc := make(chan error, readers)
	for ri, ro := range ros {
		wg.Add(1)
		go func(ri int, ro *Store) {
			defer wg.Done()
			// Each reader spins on every key until it appears, then
			// validates the payload — a torn or misdecoded object fails.
			for k := 0; k < keys; k++ {
				key := fmt.Sprintf("rs2|concurrent-%d", k)
				want := testStats(uint64(k))
				for tries := 0; ; tries++ {
					if stats, _, ok := ro.Load(key); ok {
						if !reflect.DeepEqual(stats, want) {
							errc <- fmt.Errorf("reader %d: key %s holds %+v, want %+v", ri, key, stats, want)
						}
						break
					}
					if tries > 10000 {
						errc <- fmt.Errorf("reader %d: key %s never appeared", ri, key)
						break
					}
					time.Sleep(100 * time.Microsecond)
				}
			}
		}(ri, ro)
	}
	for k := 0; k < keys; k++ {
		w.Save(fmt.Sprintf("rs2|concurrent-%d", k), testStats(uint64(k)), nil)
	}
	w.Flush()
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}
}
