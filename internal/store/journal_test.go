package store

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"wayplace/internal/api"
	"wayplace/internal/obs"
)

func testBatch(workload string) *api.BatchRequest {
	return &api.BatchRequest{
		APIVersion: api.Version,
		Async:      true,
		Requests: []api.RunRequest{{
			Workload: workload,
			ICache:   api.CacheGeometry{SizeBytes: 8 << 10, Ways: 8, LineBytes: 32},
			Scheme:   api.SchemeBaseline,
		}},
	}
}

func TestJournalReplay(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal.wal")
	j, err := OpenJournal(path, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Accept("job-1", testBatch("a")); err != nil {
		t.Fatal(err)
	}
	if err := j.Accept("job-2", testBatch("b")); err != nil {
		t.Fatal(err)
	}
	if err := j.Done("job-1"); err != nil {
		t.Fatal(err)
	}
	j.Close()

	j2, err := OpenJournal(path, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	jobs, err := j2.Replay()
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) != 2 {
		t.Fatalf("replayed %d jobs, want 2", len(jobs))
	}
	if jobs[0].ID != "job-1" || !jobs[0].Done {
		t.Errorf("job-1 = %+v, want done", jobs[0])
	}
	if jobs[1].ID != "job-2" || jobs[1].Done {
		t.Errorf("job-2 = %+v, want not done", jobs[1])
	}
	if got := jobs[1].Batch.Requests[0].Workload; got != "b" {
		t.Errorf("job-2 batch workload %q, want %q (the verbatim accepted batch)", got, "b")
	}
}

// Duplicate accepts happen when two submitters race the same batch id
// before the journal append and both lose: replay keeps the first.
func TestJournalReplayDeduplicatesAccepts(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal.wal")
	j, err := OpenJournal(path, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	if err := j.Accept("job-1", testBatch("first")); err != nil {
		t.Fatal(err)
	}
	if err := j.Accept("job-1", testBatch("second")); err != nil {
		t.Fatal(err)
	}
	jobs, err := j.Replay()
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) != 1 {
		t.Fatalf("replayed %d jobs, want 1", len(jobs))
	}
	if got := jobs[0].Batch.Requests[0].Workload; got != "first" {
		t.Errorf("kept batch %q, want the first accept", got)
	}
}

// A SIGKILL can tear the final append. The torn tail — unterminated
// or garbled — is skipped and counted, never a boot failure, and
// every record before it survives.
func TestJournalTornTail(t *testing.T) {
	reg := obs.NewRegistry()
	path := filepath.Join(t.TempDir(), "journal.wal")
	j, err := OpenJournal(path, reg)
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Accept("job-1", testBatch("a")); err != nil {
		t.Fatal(err)
	}
	if err := j.Accept("job-2", testBatch("b")); err != nil {
		t.Fatal(err)
	}
	j.Close()

	// Tear the file mid-final-record.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data[:len(data)-10], 0o644); err != nil {
		t.Fatal(err)
	}

	j2, err := OpenJournal(path, reg)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	jobs, err := j2.Replay()
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) != 1 || jobs[0].ID != "job-1" {
		t.Fatalf("replay after torn tail = %+v, want exactly job-1", jobs)
	}
	if got := reg.Counter(MetricCorrupt).Value(); got != 1 {
		t.Errorf("%s = %d, want 1 (the torn record)", MetricCorrupt, got)
	}
}

// A done record whose accept was lost to corruption has nothing to
// resume and nothing to poll: skipped, counted, boot proceeds.
func TestJournalDoneWithoutAccept(t *testing.T) {
	reg := obs.NewRegistry()
	path := filepath.Join(t.TempDir(), "journal.wal")
	j, err := OpenJournal(path, reg)
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	if err := j.Done("job-ghost"); err != nil {
		t.Fatal(err)
	}
	jobs, err := j.Replay()
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) != 0 {
		t.Fatalf("replayed %d jobs, want 0", len(jobs))
	}
	if got := reg.Counter(MetricCorrupt).Value(); got != 1 {
		t.Errorf("%s = %d, want 1", MetricCorrupt, got)
	}
}

// Garbage lines anywhere in the file — not just the tail — are
// skipped individually; valid records around them survive.
func TestJournalGarbageLines(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal.wal")
	j, err := OpenJournal(path, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Accept("job-1", testBatch("a")); err != nil {
		t.Fatal(err)
	}
	j.Close()

	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	mangled := "not json at all\n" + string(data) + "{\"schema\":\"wrong/v9\"}\n\x00\x01\x02\n" + string(data)
	if err := os.WriteFile(path, []byte(mangled), 0o644); err != nil {
		t.Fatal(err)
	}

	j2, err := OpenJournal(path, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	jobs, err := j2.Replay()
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) != 1 || jobs[0].ID != "job-1" {
		t.Fatalf("replay with embedded garbage = %+v, want exactly job-1", jobs)
	}
}

func TestJournalCompact(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal.wal")
	j, err := OpenJournal(path, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	for _, id := range []string{"job-1", "job-2", "job-3"} {
		if err := j.Accept(id, testBatch(id)); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Done("job-2"); err != nil {
		t.Fatal(err)
	}

	// Compact down to job-2 (done, still pollable) and job-3 (live).
	live := []JournalJob{
		{ID: "job-2", Batch: *testBatch("job-2"), AcceptedAt: time.Unix(100, 0), Done: true, DoneAt: time.Unix(200, 0)},
		{ID: "job-3", Batch: *testBatch("job-3"), AcceptedAt: time.Unix(150, 0)},
	}
	if err := j.Compact(live); err != nil {
		t.Fatal(err)
	}

	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(data), "job-1") {
		t.Error("compacted journal still mentions the expired job-1")
	}

	// The append handle survives compaction.
	if err := j.Accept("job-4", testBatch("job-4")); err != nil {
		t.Fatal(err)
	}
	jobs, err := j.Replay()
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) != 3 {
		t.Fatalf("replayed %d jobs after compact+append, want 3", len(jobs))
	}
	if !jobs[0].Done || jobs[0].ID != "job-2" {
		t.Errorf("job-2 lost its done mark across compaction: %+v", jobs[0])
	}
	if jobs[0].DoneAt != time.Unix(200, 0) {
		t.Errorf("job-2 DoneAt %v, want the original %v", jobs[0].DoneAt, time.Unix(200, 0))
	}
}

func TestDecodeJournalCounts(t *testing.T) {
	cases := []struct {
		name    string
		input   string
		recs    int
		corrupt int
	}{
		{"empty", "", 0, 0},
		{"blank lines only", "\n\n  \n", 0, 0},
		{"unterminated nonempty tail", `{"schema":"wpjournal/v1"`, 0, 1},
		{"unterminated whitespace tail", "   ", 0, 0},
		{"garbage line", "garbage\n", 0, 1},
		{"valid done", `{"schema":"wpjournal/v1","op":"done","job":"j"}` + "\n", 1, 0},
		{"wrong schema", `{"schema":"wpjournal/v2","op":"done","job":"j"}` + "\n", 0, 1},
		{"missing job", `{"schema":"wpjournal/v1","op":"done"}` + "\n", 0, 1},
		{"unknown op", `{"schema":"wpjournal/v1","op":"pause","job":"j"}` + "\n", 0, 1},
		{"accept without batch", `{"schema":"wpjournal/v1","op":"accept","job":"j"}` + "\n", 0, 1},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			recs, corrupt := DecodeJournal([]byte(tc.input))
			if len(recs) != tc.recs || corrupt != tc.corrupt {
				t.Errorf("DecodeJournal(%q) = %d recs, %d corrupt; want %d, %d",
					tc.input, len(recs), corrupt, tc.recs, tc.corrupt)
			}
		})
	}
}

// FuzzDecodeJournal enforces the decoder's totality: any byte soup —
// torn tails, NULs, deeply nested JSON — yields records plus a
// corrupt count, never a panic, and every returned record is valid.
func FuzzDecodeJournal(f *testing.F) {
	f.Add([]byte(""))
	f.Add([]byte("\n"))
	f.Add([]byte(`{"schema":"wpjournal/v1","op":"done","job":"j","unix":1}` + "\n"))
	f.Add([]byte(`{"schema":"wpjournal/v1","op":"accept","job":"j","batch":{"requests":[{"workload":"w"}]}}` + "\n"))
	f.Add([]byte(`{"schema":"wpjournal/v1","op":"acc`))
	f.Add([]byte("\x00\xff\xfe\n{}\n[]\ntrue\n"))
	f.Fuzz(func(t *testing.T, data []byte) {
		recs, corrupt := DecodeJournal(data)
		if corrupt < 0 {
			t.Fatalf("negative corrupt count %d", corrupt)
		}
		for i, rec := range recs {
			if !validRecord(&rec) {
				t.Fatalf("record %d is invalid: %+v", i, rec)
			}
		}
	})
}
