// Package store is the persistence layer under the serving stack: a
// disk-backed content-addressed store of simulation results plus an
// append-only journal of accepted async batches. Together they make a
// wpserved restart invisible to clients — every result any client has
// ever computed is durable under its canonical engine.RunSpec.Key, and
// every async job id handed out as a 202 survives to be resumed or
// re-polled after a crash.
//
// The store is content-addressed the same way the engine's run cache
// is keyed: RunSpec.Key() is a canonical, exhaustive, process-stable
// serialization of a cell, so one key names one result forever. A key
// is stored as one file (objects/<aa>/<sha256(key)>.json) written
// atomically: marshal, write to a temp file in the same directory,
// fsync, rename, fsync the directory. Readers therefore see either
// nothing or a complete object — never a torn write — and a SIGKILL
// at any instant leaves the store loadable.
//
// Corruption (a truncated object, bit rot, a hand-edited file) is
// never fatal: a load that fails to decode or fails its key check is
// counted on store_corrupt_total and treated as a miss, so the cell
// is simply re-simulated. `wpserved -store-fsck` walks the whole
// store and reports every such object.
package store

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"log"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"

	"wayplace/internal/api"
	"wayplace/internal/obs"
	"wayplace/internal/sim"
)

// Metric names the store registers on the installed registry.
const (
	// MetricHits / MetricMisses: result loads served from disk vs not
	// present (a corrupt object counts as a miss *and* a corruption).
	MetricHits   = "store_hits_total"
	MetricMisses = "store_misses_total"
	// MetricWrites: objects durably written (tmp+rename completed).
	MetricWrites = "store_writes_total"
	// MetricCorrupt: objects or journal records that failed to decode
	// or failed validation and were skipped.
	MetricCorrupt = "store_corrupt_total"
	// MetricWriteErrors: write-behind saves that failed to reach disk
	// (the result stays served from memory; a restart re-simulates).
	MetricWriteErrors = "store_write_errors_total"
)

// metaSchema tags the store's meta.json, which pins the base machine
// configuration fingerprint the objects were computed under.
const metaSchema = "wpstore-meta/v1"

type storeMeta struct {
	Schema      string `json:"schema"`
	Fingerprint string `json:"fingerprint,omitempty"`
}

// Options configures Open.
type Options struct {
	// Dir is the store root; created if absent. Required.
	Dir string
	// Registry, when non-nil, receives the store_* instruments.
	Registry *obs.Registry
	// Fingerprint identifies the base machine configuration results
	// are computed under (Fingerprint(cfg) of the daemon's base
	// sim.Config). RunSpec.Key captures the cell, not the base
	// template, so a store directory is only valid for one base;
	// opening it under a different fingerprint is refused rather than
	// silently serving results from the wrong machine.
	Fingerprint string
	// QueueDepth bounds the write-behind queue; Save blocks once it is
	// full (disk backpressure, never unbounded memory). Default 256.
	QueueDepth int
}

// Store is the disk CAS. Load and Save are safe for concurrent use;
// Save is write-behind (a single writer goroutine performs the
// durable writes), so the simulation hot path never waits on fsync.
type Store struct {
	dir      string
	readOnly bool

	hits      *obs.Counter
	misses    *obs.Counter
	writes    *obs.Counter
	corrupt   *obs.Counter
	writeErrs *obs.Counter

	queue     chan saveReq // nil on a read-only store
	writerWG  sync.WaitGroup
	closeOnce sync.Once
}

type saveReq struct {
	key     string
	stats   *sim.RunStats
	changes []api.AreaChange
	// flush, when non-nil, marks a barrier: the writer closes it once
	// every earlier save has reached disk.
	flush chan struct{}
}

// Fingerprint digests any comparable configuration value into a short
// stable string for Options.Fingerprint. %#v is deterministic for the
// plain nested structs sim.Config is made of.
func Fingerprint(v any) string {
	h := sha256.Sum256([]byte(fmt.Sprintf("%#v", v)))
	return hex.EncodeToString(h[:16])
}

// Open opens (or initialises) the store rooted at opt.Dir and starts
// the write-behind writer. The caller must Close it to flush pending
// saves.
func Open(opt Options) (*Store, error) {
	if opt.Dir == "" {
		return nil, errors.New("store: Options.Dir is required")
	}
	if opt.QueueDepth <= 0 {
		opt.QueueDepth = 256
	}
	if err := os.MkdirAll(filepath.Join(opt.Dir, "objects"), 0o755); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	if err := checkMeta(opt.Dir, opt.Fingerprint, true); err != nil {
		return nil, err
	}
	s := &Store{
		dir:       opt.Dir,
		hits:      opt.Registry.Counter(MetricHits),
		misses:    opt.Registry.Counter(MetricMisses),
		writes:    opt.Registry.Counter(MetricWrites),
		corrupt:   opt.Registry.Counter(MetricCorrupt),
		writeErrs: opt.Registry.Counter(MetricWriteErrors),
		queue:     make(chan saveReq, opt.QueueDepth),
	}
	s.writerWG.Add(1)
	go s.writer()
	return s, nil
}

// OpenReadOnly opens an existing store for shared read-only use: no
// write-behind writer is started, Save silently drops, Put refuses.
// Unlike Open it never initialises anything on disk — the directory
// must already be a store (meta.json present), so a typo'd path fails
// loudly instead of shadowing the real store with an empty one. Any
// number of read-only opens may run concurrently with one writing
// Open of the same directory: objects appear atomically (tmp + fsync
// + rename), so a reader sees each result either not at all or
// complete, never torn.
func OpenReadOnly(opt Options) (*Store, error) {
	if opt.Dir == "" {
		return nil, errors.New("store: Options.Dir is required")
	}
	if _, err := os.Stat(opt.Dir); err != nil {
		return nil, fmt.Errorf("store: read-only open: %w", err)
	}
	if err := checkMeta(opt.Dir, opt.Fingerprint, false); err != nil {
		return nil, err
	}
	return &Store{
		dir:       opt.Dir,
		readOnly:  true,
		hits:      opt.Registry.Counter(MetricHits),
		misses:    opt.Registry.Counter(MetricMisses),
		writes:    opt.Registry.Counter(MetricWrites),
		corrupt:   opt.Registry.Counter(MetricCorrupt),
		writeErrs: opt.Registry.Counter(MetricWriteErrors),
	}, nil
}

// ReadOnly reports whether the store was opened with OpenReadOnly.
func (s *Store) ReadOnly() bool { return s.readOnly }

// checkMeta pins the directory to one base-config fingerprint: the
// first writing open records it, later opens must match. A read-only
// open (create=false) additionally requires the meta file to already
// exist — it never initialises the directory.
func checkMeta(dir, fingerprint string, create bool) error {
	path := filepath.Join(dir, "meta.json")
	data, err := os.ReadFile(path)
	switch {
	case err == nil:
		var meta storeMeta
		if derr := json.Unmarshal(data, &meta); derr != nil || meta.Schema != metaSchema {
			return fmt.Errorf("store: %s is not a %s file", path, metaSchema)
		}
		if meta.Fingerprint != "" && fingerprint != "" && meta.Fingerprint != fingerprint {
			return fmt.Errorf("store: %s was written under base-config fingerprint %s, this process runs %s — results would alias; use a fresh -store directory",
				dir, meta.Fingerprint, fingerprint)
		}
		return nil
	case os.IsNotExist(err) && !create:
		return fmt.Errorf("store: %s is not an initialised store (no meta.json); open it with a writer first", dir)
	case os.IsNotExist(err):
		data, merr := json.Marshal(storeMeta{Schema: metaSchema, Fingerprint: fingerprint})
		if merr != nil {
			return merr
		}
		return writeFileAtomic(path, append(data, '\n'))
	default:
		return fmt.Errorf("store: %w", err)
	}
}

// objectPath maps a canonical cell key onto its file: keys contain
// '|' and other non-path characters, so the filename is the hex
// sha256 of the key with a two-character fan-out directory. Fsck
// re-derives this mapping to verify every object sits under the name
// its embedded key hashes to.
func objectPath(dir, key string) string {
	h := HashKey(key)
	return filepath.Join(dir, "objects", h[:2], h+".json")
}

// HashKey returns the filename stem a cell key is stored under.
func HashKey(key string) string {
	h := sha256.Sum256([]byte(key))
	return hex.EncodeToString(h[:])
}

// Load reads the result stored under key. ok=false means not present
// — including present-but-corrupt, which is additionally counted on
// store_corrupt_total and left in place for fsck to report.
func (s *Store) Load(key string) (*sim.RunStats, []sim.AreaChange, bool) {
	data, err := os.ReadFile(objectPath(s.dir, key))
	if err != nil {
		s.misses.Inc()
		return nil, nil, false
	}
	obj, err := decodeObject(data, key)
	if err != nil {
		s.corrupt.Inc()
		s.misses.Inc()
		log.Printf("store: corrupt object for key %s: %v", key, err)
		return nil, nil, false
	}
	s.hits.Inc()
	return obj.Stats, areaChangesOf(obj.AreaChanges), true
}

// decodeObject validates one object file against the key it should
// hold. Every failure mode — truncation, garbage, schema drift, a
// file renamed onto the wrong hash — lands here, never as a panic.
func decodeObject(data []byte, key string) (*api.StoredResult, error) {
	var obj api.StoredResult
	if err := json.Unmarshal(data, &obj); err != nil {
		return nil, err
	}
	if obj.Schema != api.StoreSchema {
		return nil, fmt.Errorf("schema %q, want %q", obj.Schema, api.StoreSchema)
	}
	if key != "" && obj.Key != key {
		return nil, fmt.Errorf("object holds key %q", obj.Key)
	}
	if obj.Stats == nil {
		return nil, errors.New("object has no stats")
	}
	return &obj, nil
}

// Save queues one result for durable write-behind storage. It blocks
// only when the writer is QueueDepth results behind. Safe to call
// concurrently; a Save after Close is dropped, and on a read-only
// store Save is a no-op (the engine above it keeps the result in its
// run cache; only the writing process persists).
func (s *Store) Save(key string, stats *sim.RunStats, changes []sim.AreaChange) {
	if s.readOnly {
		return
	}
	defer func() {
		// The queue closes on Close; racing saves from still-draining
		// engine cells are dropped rather than panicking the cell.
		recover()
	}()
	s.queue <- saveReq{key: key, stats: stats, changes: wireAreaChanges(changes)}
}

// Put writes one result synchronously and durably; Save is this, off
// the caller's goroutine. A read-only store refuses.
func (s *Store) Put(key string, stats *sim.RunStats, changes []sim.AreaChange) error {
	if s.readOnly {
		return fmt.Errorf("store: %s is open read-only", s.dir)
	}
	return s.put(saveReq{key: key, stats: stats, changes: wireAreaChanges(changes)})
}

func (s *Store) put(req saveReq) error {
	obj := api.StoredResult{Schema: api.StoreSchema, Key: req.key, Stats: req.stats, AreaChanges: req.changes}
	data, err := json.Marshal(obj)
	if err != nil {
		return fmt.Errorf("store: marshal %s: %w", req.key, err)
	}
	path := objectPath(s.dir, req.key)
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	if err := writeFileAtomic(path, append(data, '\n')); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	s.writes.Inc()
	return nil
}

func (s *Store) writer() {
	defer s.writerWG.Done()
	for req := range s.queue {
		if req.flush != nil {
			close(req.flush)
			continue
		}
		if err := s.put(req); err != nil {
			s.writeErrs.Inc()
			log.Printf("store: write-behind save failed (result stays in memory, a restart re-simulates): %v", err)
		}
	}
}

// Flush blocks until every Save enqueued before the call has reached
// disk. On a read-only store it is a no-op.
func (s *Store) Flush() {
	if s.readOnly {
		return
	}
	done := make(chan struct{})
	func() {
		defer func() { recover() }()
		s.queue <- saveReq{flush: done}
		<-done
	}()
}

// Close flushes pending saves and stops the writer. Idempotent; on a
// read-only store there is nothing to stop.
func (s *Store) Close() error {
	s.closeOnce.Do(func() {
		if s.queue != nil {
			close(s.queue)
			s.writerWG.Wait()
		}
	})
	return nil
}

// Dir returns the store root.
func (s *Store) Dir() string { return s.dir }

// writeFileAtomic is the crash-ordering primitive: the data is fully
// on disk (fsync) under a temp name before the rename makes it
// visible, and the directory entry itself is fsync'd, so a reader —
// in this process or after a SIGKILL and restart — sees the old
// state or the complete new one, never a prefix.
func writeFileAtomic(path string, data []byte) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".tmp-*")
	if err != nil {
		return err
	}
	tmpName := tmp.Name()
	defer os.Remove(tmpName) // no-op after a successful rename
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmpName, path); err != nil {
		return err
	}
	return syncDir(dir)
}

func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}

func wireAreaChanges(changes []sim.AreaChange) []api.AreaChange {
	if len(changes) == 0 {
		return nil
	}
	out := make([]api.AreaChange, len(changes))
	for i, ch := range changes {
		out[i] = api.AreaChange{AtInstr: ch.AtInstr, SizeBytes: ch.Size}
	}
	return out
}

func areaChangesOf(wire []api.AreaChange) []sim.AreaChange {
	if len(wire) == 0 {
		return nil
	}
	out := make([]sim.AreaChange, len(wire))
	for i, ch := range wire {
		out[i] = sim.AreaChange{AtInstr: ch.AtInstr, Size: ch.SizeBytes}
	}
	return out
}

// FsckReport summarises one consistency walk over a store directory.
type FsckReport struct {
	Objects int      // decodable objects whose key re-hashes to their filename
	Corrupt []string // paths that failed decoding or the key check
}

// Fsck walks every CAS object under dir and verifies it decodes, is
// schema-tagged, and re-hashes to its filename — the integrity
// invariant behind `wpserved -store-fsck`. It never modifies the
// store. A missing objects directory is an empty, healthy store.
func Fsck(dir string) (*FsckReport, error) {
	rep := &FsckReport{}
	root := filepath.Join(dir, "objects")
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			if os.IsNotExist(err) && path == root {
				return nil
			}
			return err
		}
		if d.IsDir() || !strings.HasSuffix(path, ".json") {
			return nil
		}
		data, rerr := os.ReadFile(path)
		if rerr != nil {
			return rerr
		}
		obj, derr := decodeObject(data, "")
		if derr != nil {
			rep.Corrupt = append(rep.Corrupt, fmt.Sprintf("%s: %v", path, derr))
			return nil
		}
		want := HashKey(obj.Key) + ".json"
		if filepath.Base(path) != want {
			rep.Corrupt = append(rep.Corrupt, fmt.Sprintf("%s: key %q re-hashes to %s", path, obj.Key, want))
		} else {
			rep.Objects++
		}
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("store: fsck: %w", err)
	}
	sort.Strings(rep.Corrupt)
	return rep, nil
}
