package store

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"time"

	"wayplace/internal/api"
	"wayplace/internal/obs"
)

// Journal is the append-only log of accepted async batches. One
// accept record (carrying the verbatim api.BatchRequest) is fsync'd
// before the server's 202 leaves the process; one done record marks
// completion. On boot the server replays the journal: jobs with no
// done record resume execution, done jobs stay pollable until their
// TTL, and the file is compacted down to the records that still
// matter.
//
// The file is JSON lines. A SIGKILL can tear at most the final line
// (appends are single writes followed by fsync), so the decoder
// treats an unparsable or unterminated tail as corruption to skip —
// counted on store_corrupt_total — never as a reason to refuse boot.
type Journal struct {
	path    string
	corrupt *obs.Counter

	mu sync.Mutex
	f  *os.File
}

// OpenJournal opens (creating if absent) the journal at path for
// appending. Reading happens via Replay.
func OpenJournal(path string, reg *obs.Registry) (*Journal, error) {
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return nil, fmt.Errorf("store: journal: %w", err)
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("store: journal: %w", err)
	}
	return &Journal{path: path, f: f, corrupt: reg.Counter(MetricCorrupt)}, nil
}

// Path returns the journal file path.
func (j *Journal) Path() string { return j.path }

// JournalJob is one job reconstructed from the journal: the batch to
// (re-)run and where its lifecycle stood at the crash.
type JournalJob struct {
	ID         string
	Batch      api.BatchRequest
	AcceptedAt time.Time
	Done       bool
	DoneAt     time.Time
}

// Replay decodes the journal into its surviving jobs, skipping (and
// counting) corrupt records and the torn tail. Records are folded in
// file order, so a done record marks the accept that precedes it.
func (j *Journal) Replay() ([]JournalJob, error) {
	data, err := os.ReadFile(j.path)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, fmt.Errorf("store: journal: %w", err)
	}
	recs, bad := DecodeJournal(data)
	j.corrupt.Add(uint64(bad))
	var order []string
	jobs := make(map[string]*JournalJob)
	for _, rec := range recs {
		switch rec.Op {
		case api.JournalOpAccept:
			if _, ok := jobs[rec.Job]; ok {
				continue // duplicate accept: first one wins
			}
			jobs[rec.Job] = &JournalJob{
				ID:         rec.Job,
				Batch:      *rec.Batch,
				AcceptedAt: time.Unix(rec.Unix, 0),
			}
			order = append(order, rec.Job)
		case api.JournalOpDone:
			job, ok := jobs[rec.Job]
			if !ok {
				// A done mark whose accept was lost (torn or corrupt):
				// nothing to resume, nothing to poll.
				j.corrupt.Inc()
				continue
			}
			job.Done, job.DoneAt = true, time.Unix(rec.Unix, 0)
		}
	}
	out := make([]JournalJob, len(order))
	for i, id := range order {
		out[i] = *jobs[id]
	}
	return out, nil
}

// DecodeJournal parses journal bytes into valid records, returning
// how many lines were skipped as corrupt. It is total: any input —
// torn tails, garbage, embedded NULs — yields a result, never a
// panic (FuzzDecodeJournal enforces this).
func DecodeJournal(data []byte) (recs []api.JournalRecord, corrupt int) {
	for len(data) > 0 {
		nl := bytes.IndexByte(data, '\n')
		var line []byte
		if nl < 0 {
			// Unterminated tail: the append it belonged to never
			// finished; a complete record always ends in '\n' before
			// its fsync.
			line, data = data, nil
			if len(bytes.TrimSpace(line)) > 0 {
				corrupt++
			}
			break
		}
		line, data = data[:nl], data[nl+1:]
		if len(bytes.TrimSpace(line)) == 0 {
			continue
		}
		var rec api.JournalRecord
		if err := json.Unmarshal(line, &rec); err != nil {
			corrupt++
			continue
		}
		if !validRecord(&rec) {
			corrupt++
			continue
		}
		recs = append(recs, rec)
	}
	return recs, corrupt
}

func validRecord(rec *api.JournalRecord) bool {
	if rec.Schema != api.JournalSchema || rec.Job == "" {
		return false
	}
	switch rec.Op {
	case api.JournalOpAccept:
		return rec.Batch != nil && len(rec.Batch.Requests) > 0
	case api.JournalOpDone:
		return true
	}
	return false
}

// Accept appends and fsyncs the accept record for one async batch.
// It MUST complete before the 202 response is written — that ordering
// is what makes every id a client holds crash-durable.
func (j *Journal) Accept(id string, batch *api.BatchRequest) error {
	return j.append(api.JournalRecord{
		Schema: api.JournalSchema, Op: api.JournalOpAccept,
		Job: id, Unix: time.Now().Unix(), Batch: batch,
	})
}

// Done appends and fsyncs the completion record for a job. Results
// need not be durable first: a done job replayed without its stored
// results is simply recomputed, deterministically, on boot.
func (j *Journal) Done(id string) error {
	return j.append(api.JournalRecord{
		Schema: api.JournalSchema, Op: api.JournalOpDone,
		Job: id, Unix: time.Now().Unix(),
	})
}

func (j *Journal) append(rec api.JournalRecord) error {
	data, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("store: journal: %w", err)
	}
	data = append(data, '\n')
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return fmt.Errorf("store: journal: closed")
	}
	if _, err := j.f.Write(data); err != nil {
		return fmt.Errorf("store: journal: %w", err)
	}
	if err := j.f.Sync(); err != nil {
		return fmt.Errorf("store: journal: %w", err)
	}
	return nil
}

// Compact atomically rewrites the journal to exactly the given jobs
// (their accept records, plus done records where applicable), then
// reopens it for appending. Boot replay calls it after expiring old
// jobs, so the file stays proportional to the live set instead of
// growing for the life of the deployment.
func (j *Journal) Compact(live []JournalJob) error {
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	for i := range live {
		job := &live[i]
		if err := enc.Encode(api.JournalRecord{
			Schema: api.JournalSchema, Op: api.JournalOpAccept,
			Job: job.ID, Unix: job.AcceptedAt.Unix(), Batch: &job.Batch,
		}); err != nil {
			return fmt.Errorf("store: journal: %w", err)
		}
		if job.Done {
			if err := enc.Encode(api.JournalRecord{
				Schema: api.JournalSchema, Op: api.JournalOpDone,
				Job: job.ID, Unix: job.DoneAt.Unix(),
			}); err != nil {
				return fmt.Errorf("store: journal: %w", err)
			}
		}
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f != nil {
		j.f.Close()
	}
	if err := writeFileAtomic(j.path, buf.Bytes()); err != nil {
		return fmt.Errorf("store: journal: compact: %w", err)
	}
	f, err := os.OpenFile(j.path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("store: journal: %w", err)
	}
	j.f = f
	return nil
}

// Close closes the append handle.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return nil
	}
	err := j.f.Close()
	j.f = nil
	return err
}
