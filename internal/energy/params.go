package energy

// Params holds the technology constants of the analytical model, in
// arbitrary energy units (only ratios reach any reported number).
//
// Derivation / calibration notes
//
// The XScale-style cache is CAM-tagged and sub-banked by set: one
// access searches the W tag entries of one sub-bank and then reads a
// 32-bit word from the matching way's data row.
//
//   - CAMSearchPerBit: searching one CAM way toggles its match line
//     and compares tagBits cells. With a 22-bit tag (32KB/32-way/32B)
//     one way costs 22 units and a full 32-way search 704.
//   - RAMTagBitRead: reading one way's tag from a conventional SRAM
//     tag array (RAM-tag organisation) — cheaper per bit than a CAM
//     search, but a RAM cache also reads every way's *data* in
//     parallel, which is where way-placement saves on that style.
//   - DataBitFixed / DataBitPerWay: a data-word read costs
//     32*(fixed + perWay*W). The fixed part (decode, sense amps,
//     H-tree, output drivers) dominates; the perWay part is the
//     bitline loading of the W rows in the active sub-bank. With the
//     defaults a 32-way read costs ~621 units and a 16-way read ~591,
//     making tag energy ~53% of a 32-way access and ~23% of a 16-way
//     access — the associativity dependence that lets the paper's
//     scheme save most in highly-associative caches (the StrongARM /
//     XScale CAM design point, [13][16] in the paper).
//   - WriteFactor: array writes cost more than reads per bit.
//   - LinkRowActivate: a way-memoization link write re-activates the
//     (21% wider) data row to deposit 6 bits; charged as a fraction
//     of a data read plus the narrow write itself.
//   - LinkWordlineShare: the fraction of a data read's energy that
//     scales with row width; a 21% wider row costs 1 + 0.21*share
//     more per read, on top of the extra link bits read per fetch.
//   - TLBAccess/TLBWalk: 32-entry fully-associative CAM lookup and a
//     page-table walk.
//   - CorePerCycle: everything that is neither I-cache, D-cache nor
//     TLB — clock tree, fetch/decode/execute datapath, register
//     file, scoreboard. Chosen so the instruction cache draws ~14% of
//     baseline processor energy on the 32KB/32-way configuration:
//     the paper's average ED product of 0.93 under a ~50% I-cache
//     energy saving pins the share near that value, and it grows
//     towards ~20% on the largest swept configuration (64KB/64-way),
//     where the paper reports its best ED product.
type Params struct {
	CAMSearchPerBit   float64
	RAMTagBitRead     float64
	DataBitFixed      float64
	DataBitPerWay     float64
	WriteFactor       float64
	LinkRowActivate   float64
	LinkWordlineShare float64
	TLBAccess         float64
	TLBWalk           float64
	CorePerCycle      float64
}

// Default returns the calibrated model constants.
func Default() Params {
	return Params{
		CAMSearchPerBit:   1.0,
		RAMTagBitRead:     0.6,
		DataBitFixed:      17.5,
		DataBitPerWay:     0.06,
		WriteFactor:       1.5,
		LinkRowActivate:   0.5,
		LinkWordlineShare: 0.5,
		TLBAccess:         120,
		TLBWalk:           2000,
		CorePerCycle:      6000,
	}
}
