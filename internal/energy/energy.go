// Package energy converts the event counts collected by the cache,
// TLB and CPU models into energy figures and the energy-delay (ED)
// product — the two metrics the paper reports.
//
// The model is an analytical CAM-cache model in the CACTI tradition,
// specialised to the XScale organisation the paper targets: each set
// is a fully-associative CAM sub-bank holding all W ways, searched in
// one go; the data array row of the matching way is then read. Only
// one sub-bank is active per access, so per-access energy depends on
// the associativity (rows per sub-bank) and the tag width, and only
// weakly on the number of sets. All constants are in arbitrary energy
// units — every result the repository reports is normalised to the
// baseline, so only ratios matter. See params.go for the derivations.
package energy

import (
	"fmt"

	"wayplace/internal/cache"
	"wayplace/internal/tlb"
)

// ArrayStyle selects the cache's physical organisation.
type ArrayStyle uint8

// The two organisations of section 4.2: the XScale's CAM-tagged
// sub-banked array (the default), and a conventional SRAM ("RAM")
// set-associative array, which reads the tags *and the data* of all W
// ways in parallel and selects late — the paper notes its scheme
// "could also easily be applied to a standard RAM cache", where it
// saves data-array energy too.
const (
	CAMTag ArrayStyle = iota
	RAMTag
)

// String names the array style.
func (a ArrayStyle) String() string {
	if a == RAMTag {
		return "ram-tag"
	}
	return "cam-tag"
}

// Scheme identifies the instruction-fetch discipline, which decides
// whether the data array carries way-memoization links.
type Scheme uint8

// The three schemes of the evaluation.
const (
	Baseline Scheme = iota
	WayPlacement
	WayMemoization
)

// String names the scheme as in the paper's figures.
func (s Scheme) String() string {
	switch s {
	case Baseline:
		return "baseline"
	case WayPlacement:
		return "wayplace"
	case WayMemoization:
		return "waymem"
	}
	return fmt.Sprintf("scheme(%d)", uint8(s))
}

// CacheEnergies holds the per-event energies of one cache geometry.
type CacheEnergies struct {
	TagPerWay float64 // one CAM way searched: match-line precharge + compare
	DataRead  float64 // one word read from the matched way
	DataWrite float64 // one word written (D-cache stores)
	LineFill  float64 // whole-line write + tag write
	LinkWrite float64 // way-memoization link update (small array write)
	LinkMult  float64 // data-array widening factor when links are present
}

// EnergiesFor derives per-event energies for a CAM-tag cache
// geometry. withLinks widens the data array by the link overhead
// (way-memoization stores links in the data side — the 21% figure of
// section 5 for a 32-way cache with 32-byte lines).
func EnergiesFor(p Params, cfg cache.Config, withLinks bool) CacheEnergies {
	return EnergiesForStyle(p, cfg, withLinks, CAMTag)
}

// EnergiesForStyle is EnergiesFor with an explicit array style. For
// RAMTag the per-way tag cost is an SRAM read instead of a CAM
// search; the data-side difference (all ways read in parallel) is an
// access-pattern property and is charged by Compute.
func EnergiesForStyle(p Params, cfg cache.Config, withLinks bool, style ArrayStyle) CacheEnergies {
	w := float64(cfg.Ways)
	tagBits := float64(cfg.TagBits())
	tagPerWay := p.CAMSearchPerBit * tagBits
	if style == RAMTag {
		tagPerWay = p.RAMTagBitRead * tagBits
	}
	e := CacheEnergies{
		TagPerWay: tagPerWay,
		DataRead:  32 * (p.DataBitFixed + p.DataBitPerWay*w),
		LinkMult:  1,
	}
	e.DataWrite = e.DataRead * p.WriteFactor
	lineBits := float64(cfg.LineBytes * 8)
	e.LineFill = lineBits*(p.DataBitFixed+p.DataBitPerWay*w)*p.WriteFactor +
		p.CAMSearchPerBit*tagBits*p.WriteFactor
	if withLinks {
		// Way-memoization widens every data row by the link storage
		// (21% for 32 ways / 32B lines, section 5), and every fetch
		// must read the fetched word plus the two links that steer the
		// following fetch (the slot link and the sequential link), so
		// the per-access read grows on two axes: more bits read and a
		// longer word line. Fills write the whole widened row.
		linkBits := float64(cfg.LinkBits())
		wordline := 1 + cfg.LinkOverhead()*p.LinkWordlineShare
		e.LinkMult = (32 + 2*linkBits) / 32 * wordline
		e.DataRead *= e.LinkMult
		e.DataWrite *= e.LinkMult
		e.LineFill *= 1 + cfg.LinkOverhead()
		// A link write is a read-modify-write of a few bits in the
		// wide data row; charge it as a narrow write plus the row
		// activation share.
		e.LinkWrite = linkBits*(p.DataBitFixed+p.DataBitPerWay*w)*p.WriteFactor +
			p.LinkRowActivate*e.DataRead
	}
	return e
}

// FullSearch returns the energy of one conventional access: all W
// tags searched plus one data word read.
func (e CacheEnergies) FullSearch(ways int) float64 {
	return float64(ways)*e.TagPerWay + e.DataRead
}

// Breakdown is the energy of one simulation run, by component.
type Breakdown struct {
	ICacheTag  float64
	ICacheData float64
	ICacheFill float64
	ICacheLink float64
	DCache     float64
	ITLB       float64
	DTLB       float64
	Core       float64
}

// ICache returns the instruction-cache total — the quantity the
// paper's figures 4(a), 5(a) and 6(a) normalise.
func (b Breakdown) ICache() float64 {
	return b.ICacheTag + b.ICacheData + b.ICacheFill + b.ICacheLink
}

// Total returns whole-processor energy, used for the ED product.
func (b Breakdown) Total() float64 {
	return b.ICache() + b.DCache + b.ITLB + b.DTLB + b.Core
}

// SystemStats bundles everything the model charges for.
type SystemStats struct {
	Scheme Scheme
	Style  ArrayStyle // array organisation of both caches
	ICfg   cache.Config
	IStats cache.Stats
	DCfg   cache.Config
	DStats cache.Stats
	ITLB   tlb.Stats
	DTLB   tlb.Stats
	Cycles uint64
}

// dataUnits returns how many data-way reads a run performed. A CAM
// cache reads only the matching way. A RAM cache reads one data way
// per tag compared (all ways in parallel on a full search, one on a
// way-placement probe) plus one for each tag-less access (same-line
// and linked fetches know their way already).
func dataUnits(st cache.Stats, style ArrayStyle) float64 {
	if style == CAMTag {
		return float64(st.DataReads)
	}
	tagless := st.DataReads - st.FullSearches - st.SingleSearches
	return float64(st.TagComparisons + tagless)
}

// Compute turns a run's statistics into an energy breakdown.
func Compute(p Params, s SystemStats) Breakdown {
	ie := EnergiesForStyle(p, s.ICfg, s.Scheme == WayMemoization, s.Style)
	de := EnergiesForStyle(p, s.DCfg, false, s.Style)
	var b Breakdown

	// Instruction cache. TagComparisons already counts exactly the
	// per-way searches each engine performed (W per full search, one
	// per way-placement probe, zero for linked and same-line fetches).
	b.ICacheTag = float64(s.IStats.TagComparisons) * ie.TagPerWay
	b.ICacheData = dataUnits(s.IStats, s.Style) * ie.DataRead
	b.ICacheFill = float64(s.IStats.LineFills) * ie.LineFill
	b.ICacheLink = float64(s.IStats.LinkWrites) * ie.LinkWrite

	// Data cache.
	b.DCache = float64(s.DStats.TagComparisons)*de.TagPerWay +
		dataUnits(s.DStats, s.Style)*de.DataRead +
		float64(s.DStats.DataWrites)*de.DataWrite +
		float64(s.DStats.LineFills)*de.LineFill +
		float64(s.DStats.Writebacks)*de.LineFill

	// TLBs: small fully-associative CAMs; the paper's way-placement
	// bit adds one bit per entry, charged on every I-TLB access.
	itlbBit := 0.0
	if s.Scheme == WayPlacement {
		itlbBit = p.CAMSearchPerBit // the extra way-placement bit
	}
	b.ITLB = float64(s.ITLB.Accesses)*(p.TLBAccess+itlbBit) +
		float64(s.ITLB.Misses)*p.TLBWalk
	b.DTLB = float64(s.DTLB.Accesses)*p.TLBAccess +
		float64(s.DTLB.Misses)*p.TLBWalk

	// Rest of the core: clock, datapath, register file, ...
	b.Core = float64(s.Cycles) * p.CorePerCycle
	return b
}

// NormICache returns this run's instruction-cache energy normalised
// to a baseline run's (the y-axis of figures 4(a), 5(a), 6(a)).
func NormICache(run, base Breakdown) float64 {
	return run.ICache() / base.ICache()
}

// EDProduct returns the run's energy-delay product normalised to the
// baseline: (E/E0) * (D/D0) (the y-axis of figures 4(b), 5(b), 6(b);
// below 1.0 is better).
func EDProduct(run Breakdown, runCycles uint64, base Breakdown, baseCycles uint64) float64 {
	return (run.Total() / base.Total()) * (float64(runCycles) / float64(baseCycles))
}
