package energy

import (
	"testing"
	"testing/quick"

	"wayplace/internal/cache"
	"wayplace/internal/tlb"
)

func tlbStats(acc, miss uint64) tlb.Stats {
	return tlb.Stats{Accesses: acc, Hits: acc - miss, Misses: miss}
}

func cfg(size, ways int) cache.Config {
	return cache.Config{SizeBytes: size << 10, Ways: ways, LineBytes: 32}
}

func TestTagEnergyScalesWithWays(t *testing.T) {
	p := Default()
	e8 := EnergiesFor(p, cfg(8, 8), false)
	e32 := EnergiesFor(p, cfg(32, 32), false)
	if e8.FullSearch(8) >= e32.FullSearch(32) {
		t.Errorf("8-way access %f not cheaper than 32-way %f", e8.FullSearch(8), e32.FullSearch(32))
	}
	// Tag share must be much larger at 32 ways: that is what makes
	// way-placement worthwhile on highly-associative caches.
	share := func(e CacheEnergies, w int) float64 {
		return float64(w) * e.TagPerWay / e.FullSearch(w)
	}
	s8, s32 := share(e8, 8), share(e32, 32)
	if s32 < 0.5 || s32 > 0.65 {
		t.Errorf("32-way tag share = %.3f, want ~0.55-0.60", s32)
	}
	if s8 > 0.35 {
		t.Errorf("8-way tag share = %.3f, want < 0.35", s8)
	}
	if s8 >= s32 {
		t.Errorf("tag share not increasing with ways: %f vs %f", s8, s32)
	}
}

func TestLinkWideningAppliesOnlyWithLinks(t *testing.T) {
	p := Default()
	plain := EnergiesFor(p, cfg(32, 32), false)
	linked := EnergiesFor(p, cfg(32, 32), true)
	if plain.LinkMult != 1 || plain.LinkWrite != 0 {
		t.Errorf("plain cache has link costs: %+v", plain)
	}
	// Reads grow on two axes: 12 extra link bits per fetch and a 21%
	// wider word line (half of which is charged to the read).
	c := cfg(32, 32)
	wantMult := (32.0 + 2*float64(c.LinkBits())) / 32 * (1 + c.LinkOverhead()*p.LinkWordlineShare)
	if linked.LinkMult < wantMult-1e-9 || linked.LinkMult > wantMult+1e-9 {
		t.Errorf("link mult = %f, want %f", linked.LinkMult, wantMult)
	}
	if linked.DataRead <= plain.DataRead || linked.LineFill <= plain.LineFill {
		t.Error("link widening did not increase data-side energies")
	}
	if linked.TagPerWay != plain.TagPerWay {
		t.Error("link widening changed tag energy")
	}
	if linked.LinkWrite <= 0 {
		t.Error("no link write energy")
	}
}

func TestComputeChargesEvents(t *testing.T) {
	p := Default()
	ic := cfg(32, 32)
	base := SystemStats{
		Scheme: Baseline,
		ICfg:   ic, DCfg: ic,
		IStats: cache.Stats{TagComparisons: 3200, DataReads: 100, LineFills: 2},
		Cycles: 100,
	}
	b := Compute(p, base)
	e := EnergiesFor(p, ic, false)
	if want := 3200 * e.TagPerWay; b.ICacheTag != want {
		t.Errorf("tag energy = %f, want %f", b.ICacheTag, want)
	}
	if want := 100 * e.DataRead; b.ICacheData != want {
		t.Errorf("data energy = %f, want %f", b.ICacheData, want)
	}
	if want := 2 * e.LineFill; b.ICacheFill != want {
		t.Errorf("fill energy = %f, want %f", b.ICacheFill, want)
	}
	if b.ICacheLink != 0 {
		t.Errorf("baseline has link energy %f", b.ICacheLink)
	}
	if want := 100 * p.CorePerCycle; b.Core != want {
		t.Errorf("core energy = %f, want %f", b.Core, want)
	}
	if b.Total() != b.ICache()+b.DCache+b.ITLB+b.DTLB+b.Core {
		t.Error("Total does not sum the components")
	}
}

// TestPerFetchComparison: for the same fetch pattern (one access), a
// way-placement probe must cost far less than a full search, and a
// way-memoization linked access must sit in between (it skips all
// tags but reads the widened array).
func TestPerFetchComparison(t *testing.T) {
	p := Default()
	ic := cfg(32, 32)
	plain := EnergiesFor(p, ic, false)
	linked := EnergiesFor(p, ic, true)

	full := plain.FullSearch(32)
	wp := plain.TagPerWay + plain.DataRead
	wm := linked.DataRead

	if wp >= full/2 {
		t.Errorf("WP access %f not < half of full %f", wp, full)
	}
	if wm <= plain.DataRead {
		t.Errorf("linked access %f not above plain data read %f", wm, plain.DataRead)
	}
	if wm >= full {
		t.Errorf("linked access %f not cheaper than full search %f", wm, full)
	}
}

func TestICacheShareOfTotal(t *testing.T) {
	// With a realistic event mix (0.8 fetches/cycle, 0.25 data
	// accesses/instr), the I-cache draws roughly 14% of baseline
	// processor energy at the 32KB/32-way design point. (The paper's
	// whole-processor model must sit near this value: its average ED
	// product of 0.93 under a ~50% I-cache saving implies an I-cache
	// share of ~14%; the StrongARM's 27% quoted in the introduction
	// is for a smaller, older core.)
	p := Default()
	ic := cfg(32, 32)
	cycles := uint64(1_000_000)
	fetches := uint64(800_000)
	s := SystemStats{
		Scheme: Baseline,
		ICfg:   ic, DCfg: ic,
		IStats: cache.Stats{
			TagComparisons: fetches * 32,
			DataReads:      fetches,
			LineFills:      500,
		},
		DStats: cache.Stats{
			TagComparisons: 200_000 * 32,
			DataReads:      150_000,
			DataWrites:     50_000,
			LineFills:      1000,
		},
		ITLB:   tlbStats(fetches, 100),
		DTLB:   tlbStats(200_000, 100),
		Cycles: cycles,
	}
	b := Compute(p, s)
	share := b.ICache() / b.Total()
	if share < 0.10 || share > 0.20 {
		t.Errorf("I-cache share = %.3f, want 0.10-0.20", share)
	}
}

func TestEDProductIdentity(t *testing.T) {
	p := Default()
	ic := cfg(32, 32)
	s := SystemStats{Scheme: Baseline, ICfg: ic, DCfg: ic,
		IStats: cache.Stats{TagComparisons: 320, DataReads: 10}, Cycles: 100}
	b := Compute(p, s)
	if got := EDProduct(b, 100, b, 100); got != 1.0 {
		t.Errorf("ED of self = %f, want 1", got)
	}
	if got := NormICache(b, b); got != 1.0 {
		t.Errorf("NormICache of self = %f, want 1", got)
	}
	// Halving energy at equal delay halves ED.
	half := b
	half.ICacheTag /= 2
	half.ICacheData /= 2
	if got := EDProduct(half, 100, b, 100); got >= 1.0 {
		t.Errorf("cheaper run ED = %f, want < 1", got)
	}
}

func TestEnergiesNonNegativeProperty(t *testing.T) {
	p := Default()
	f := func(sizeLog, wayLog uint8, links bool) bool {
		size := 1 << (10 + sizeLog%6)
		ways := 1 << (wayLog % 6)
		c := cache.Config{SizeBytes: size, Ways: ways, LineBytes: 32}
		if c.Validate() != nil {
			return true
		}
		e := EnergiesFor(p, c, links)
		return e.TagPerWay > 0 && e.DataRead > 0 && e.LineFill > 0 &&
			e.DataWrite >= e.DataRead && e.LinkMult >= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestSchemeString(t *testing.T) {
	if Baseline.String() != "baseline" || WayPlacement.String() != "wayplace" ||
		WayMemoization.String() != "waymem" {
		t.Error("scheme names wrong")
	}
}

func TestRAMTagDataUnits(t *testing.T) {
	// A RAM-tag cache reads one data way per tag compared, plus one
	// per tag-less access.
	st := cache.Stats{
		FullSearches:   10, // x8 ways
		SingleSearches: 5,
		SameLineHits:   20,
		TagComparisons: 10*8 + 5,
		DataReads:      10 + 5 + 20,
	}
	if got := dataUnits(st, CAMTag); got != 35 {
		t.Errorf("CAM data units = %f, want 35", got)
	}
	// RAM: 85 tag-parallel reads + 20 tag-less reads.
	if got := dataUnits(st, RAMTag); got != 105 {
		t.Errorf("RAM data units = %f, want 105", got)
	}
}

func TestRAMTagEnergiesCheaperTags(t *testing.T) {
	p := Default()
	camE := EnergiesForStyle(p, cfg(32, 8), false, CAMTag)
	ramE := EnergiesForStyle(p, cfg(32, 8), false, RAMTag)
	if ramE.TagPerWay >= camE.TagPerWay {
		t.Errorf("RAM tag read (%f) should be cheaper than CAM search (%f)",
			ramE.TagPerWay, camE.TagPerWay)
	}
	if ramE.DataRead != camE.DataRead {
		t.Error("per-way data read should not depend on tag style")
	}
	if CAMTag.String() != "cam-tag" || RAMTag.String() != "ram-tag" {
		t.Error("style names wrong")
	}
}
