// Benchmark harness: one testing.B benchmark per table and figure of
// the paper, plus the design-choice ablations from DESIGN.md and
// throughput benchmarks for the substrates.
//
// The figure benchmarks report the paper's metrics alongside timing:
//
//	normE% — normalised instruction-cache energy (figures 4a/5a/6a)
//	ED     — normalised energy-delay product x1000 (figures 4b/5b/6b)
//
// Run everything with:
//
//	go test -bench=. -benchmem
package wayplace

import (
	"context"
	"sync"
	"testing"

	"wayplace/internal/bench"
	"wayplace/internal/cache"
	"wayplace/internal/energy"
	"wayplace/internal/engine"
	"wayplace/internal/experiment"
	"wayplace/internal/layout"
	"wayplace/internal/sim"
)

// figBench is the representative workload for the per-figure
// benchmarks (the full 23-benchmark sweep lives in cmd/wpbench; a
// testing.B iteration must stay in the tens of milliseconds).
const figBench = "crc"

var (
	suiteOnce sync.Once
	suiteVal  *experiment.Suite
	suiteErr  error
)

func suite(b *testing.B) *experiment.Suite {
	b.Helper()
	suiteOnce.Do(func() {
		suiteVal, suiteErr = experiment.NewSuiteOf([]string{figBench})
	})
	if suiteErr != nil {
		b.Fatal(suiteErr)
	}
	return suiteVal
}

// runScheme executes the figure workload under one configuration and
// reports the paper's metrics.
func runScheme(b *testing.B, icfg cache.Config, scheme energy.Scheme, wp uint32) {
	b.Helper()
	s := suite(b)
	w := s.Workloads[0]
	cfg, err := sim.New(
		sim.WithICache(icfg),
		sim.WithMaxInstrs(experiment.MaxInstrs),
		sim.WithScheme(scheme),
		sim.WithWPSize(wp))
	if err != nil {
		b.Fatal(err)
	}
	baseRes, err := s.RunSpec(context.Background(),
		engine.RunSpec{Workload: w.Name, ICache: icfg, Scheme: energy.Baseline})
	if err != nil {
		b.Fatal(err)
	}
	base := baseRes.Stats
	prog := w.Original
	if scheme == energy.WayPlacement {
		prog = w.Placed
	}
	var last *sim.RunStats
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		last, err = sim.Run(prog, cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(100*energy.NormICache(last.Energy, base.Energy), "normE%")
	b.ReportMetric(1000*energy.EDProduct(last.Energy, last.Cycles, base.Energy, base.Cycles), "ED*1000")
	b.ReportMetric(float64(last.Instrs)*float64(b.N)/b.Elapsed().Seconds(), "instrs/s")
}

// --- Figure 1: the motivating example -----------------------------

func BenchmarkFig1TagComparisons(b *testing.B) {
	cfg := cache.Config{SizeBytes: 32, Ways: 4, LineBytes: 4}
	b.Run("baseline", func(b *testing.B) {
		e, _ := cache.NewBaseline(cfg)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			e.Fetch(0x04, false)
			e.Fetch(0x08, false)
			e.Fetch(0x20, false)
		}
		b.ReportMetric(float64(e.Cache().Stats.TagComparisons)/float64(b.N), "cmp/3fetch")
	})
	b.Run("wayplace", func(b *testing.B) {
		e, _ := cache.NewWayPlacement(cfg, cache.WPOracleFunc(func(uint32) bool { return true }))
		e.Fetch(0x3c, false) // warm the hint
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			e.Fetch(0x04, false)
			e.Fetch(0x08, false)
			e.Fetch(0x20, false)
		}
	})
}

// --- Table 1 / Figure 4: the initial evaluation --------------------

func BenchmarkFig4InitialEvaluation(b *testing.B) {
	icfg := experiment.XScaleICache()
	b.Run("baseline", func(b *testing.B) { runScheme(b, icfg, energy.Baseline, 0) })
	b.Run("waymem", func(b *testing.B) { runScheme(b, icfg, energy.WayMemoization, 0) })
	b.Run("wayplace", func(b *testing.B) { runScheme(b, icfg, energy.WayPlacement, experiment.InitialWPSize) })
}

// --- Figure 5: way-placement area sweep -----------------------------

func BenchmarkFig5AreaSweep(b *testing.B) {
	icfg := experiment.XScaleICache()
	for _, kb := range experiment.Fig5Sizes {
		kb := kb
		b.Run(byteName(kb), func(b *testing.B) {
			runScheme(b, icfg, energy.WayPlacement, uint32(kb)<<10)
		})
	}
}

// --- Figure 6: cache size / associativity sweep ---------------------

func BenchmarkFig6CacheSweep(b *testing.B) {
	for _, kb := range experiment.Fig6Sizes {
		for _, ways := range experiment.Fig6Ways {
			icfg := cache.Config{SizeBytes: kb << 10, Ways: ways, LineBytes: 32}
			name := byteName(kb) + "/" + wayName(ways)
			b.Run(name+"/waymem", func(b *testing.B) { runScheme(b, icfg, energy.WayMemoization, 0) })
			b.Run(name+"/wayplace", func(b *testing.B) {
				runScheme(b, icfg, energy.WayPlacement, experiment.InitialWPSize)
			})
		}
	}
}

// --- Ablations ------------------------------------------------------

func ablationScheme(b *testing.B, mutate func(*sim.Config), placed bool) {
	b.Helper()
	s := suite(b)
	w := s.Workloads[0]
	icfg := experiment.XScaleICache()
	baseRes, err := s.RunSpec(context.Background(),
		engine.RunSpec{Workload: w.Name, ICache: icfg, Scheme: energy.Baseline})
	if err != nil {
		b.Fatal(err)
	}
	base := baseRes.Stats
	cfg := sim.Default()
	cfg.ICache = icfg
	cfg.MaxInstrs = experiment.MaxInstrs
	cfg.Scheme = energy.WayPlacement
	cfg.WPSize = 2 << 10 // scarce area: where the choices matter
	mutate(&cfg)
	prog := w.Original
	if placed {
		prog = w.Placed
	}
	var last *sim.RunStats
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		last, err = sim.Run(prog, cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(100*energy.NormICache(last.Energy, base.Energy), "normE%")
}

func BenchmarkAblationLayout(b *testing.B) {
	b.Run("placed", func(b *testing.B) { ablationScheme(b, func(*sim.Config) {}, true) })
	b.Run("original", func(b *testing.B) { ablationScheme(b, func(*sim.Config) {}, false) })
}

func BenchmarkAblationHint(b *testing.B) {
	b.Run("hintbit", func(b *testing.B) { ablationScheme(b, func(*sim.Config) {}, true) })
	b.Run("oracle", func(b *testing.B) {
		ablationScheme(b, func(c *sim.Config) { c.OracleHint = true }, true)
	})
}

func BenchmarkAblationSameLine(b *testing.B) {
	b.Run("on", func(b *testing.B) { ablationScheme(b, func(*sim.Config) {}, true) })
	b.Run("off", func(b *testing.B) {
		ablationScheme(b, func(c *sim.Config) { c.NoSameLine = true }, true)
	})
}

func BenchmarkAblationReplacement(b *testing.B) {
	b.Run("roundrobin", func(b *testing.B) { ablationScheme(b, func(*sim.Config) {}, true) })
	b.Run("lru", func(b *testing.B) {
		ablationScheme(b, func(c *sim.Config) { c.ICache.Policy = cache.LRU }, true)
	})
}

// --- Substrate throughput -------------------------------------------

func BenchmarkSimulatorFunctional(b *testing.B) {
	s := suite(b)
	w := s.Workloads[0]
	b.ResetTimer()
	var instrs uint64
	for i := 0; i < b.N; i++ {
		prof, _, err := sim.ProfileRun(w.Original, experiment.MaxInstrs)
		if err != nil {
			b.Fatal(err)
		}
		instrs += prof.TotalInstrs(w.Unit)
	}
	b.StopTimer()
	b.ReportMetric(float64(instrs)/b.Elapsed().Seconds(), "instrs/s")
}

func BenchmarkLayoutPass(b *testing.B) {
	s := suite(b)
	w := s.Workloads[0]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := layout.Link(w.Unit, w.Profile, experiment.TextBase); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBuildSuiteProgram(b *testing.B) {
	bm, err := bench.ByName("sha")
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := bm.Build(bench.Large); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCacheFetchEngines(b *testing.B) {
	cfg := experiment.XScaleICache()
	addrs := make([]uint32, 4096)
	pc := uint32(0)
	seed := uint64(99)
	for i := range addrs {
		addrs[i] = pc
		seed ^= seed << 13
		seed ^= seed >> 7
		seed ^= seed << 17
		if seed%8 == 0 {
			pc = uint32(seed>>32) % (16 << 10) &^ 3
		} else {
			pc += 4
		}
	}
	b.Run("baseline", func(b *testing.B) {
		e, _ := cache.NewBaseline(cfg)
		for i := 0; i < b.N; i++ {
			e.Fetch(addrs[i%len(addrs)], false)
		}
	})
	b.Run("wayplace", func(b *testing.B) {
		e, _ := cache.NewWayPlacement(cfg, cache.WPOracleFunc(func(a uint32) bool { return a < 16<<10 }))
		for i := 0; i < b.N; i++ {
			e.Fetch(addrs[i%len(addrs)], false)
		}
	})
	b.Run("waymem", func(b *testing.B) {
		e, _ := cache.NewWayMemoization(cfg)
		for i := 0; i < b.N; i++ {
			e.Fetch(addrs[i%len(addrs)], false)
		}
	})
}

// --- helpers ---------------------------------------------------------

func byteName(kb int) string {
	const d = "0123456789"
	if kb >= 10 {
		return string([]byte{d[kb/10], d[kb%10]}) + "KB"
	}
	return string([]byte{d[kb]}) + "KB"
}

func wayName(w int) string {
	const d = "0123456789"
	if w >= 10 {
		return string([]byte{d[w/10], d[w%10]}) + "way"
	}
	return string([]byte{d[w]}) + "way"
}
